#include "serve/model_registry.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <stdexcept>
#include <utility>

namespace sgm::serve {

namespace fs = std::filesystem;

namespace {

void check_scenario_name(const std::string& scenario) {
  if (scenario.empty())
    throw std::invalid_argument("ModelRegistry: empty scenario name");
  for (const char c : scenario) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == '-' || c == '.';
    if (!ok)
      throw std::invalid_argument(
          "ModelRegistry: scenario name '" + scenario +
          "' contains characters outside [A-Za-z0-9._-]");
  }
  if (scenario[0] == '.')
    throw std::invalid_argument("ModelRegistry: scenario name '" + scenario +
                                "' may not start with '.'");
}

/// Parses "v<N>.ckpt" -> N; 0 when the name does not match.
std::uint64_t parse_version_filename(const std::string& name) {
  if (name.size() < 7 || name[0] != 'v' ||
      name.compare(name.size() - 5, 5, ".ckpt") != 0)
    return 0;
  std::uint64_t v = 0;
  for (std::size_t i = 1; i + 5 < name.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return 0;
    v = v * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return v;
}

}  // namespace

ModelRegistry::ModelRegistry(std::string root, RegistryOptions opt)
    : root_(std::move(root)), opt_(opt) {
  if (opt_.cache_capacity == 0)
    throw std::invalid_argument("ModelRegistry: cache_capacity must be >= 1");
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec)
    throw std::runtime_error("ModelRegistry: cannot create root '" + root_ +
                             "': " + ec.message());
}

std::string ModelRegistry::scenario_dir(const std::string& scenario) const {
  return root_ + "/" + scenario;
}

std::string ModelRegistry::checkpoint_path(const std::string& scenario,
                                           std::uint64_t version) const {
  return scenario_dir(scenario) + "/v" + std::to_string(version) + ".ckpt";
}

std::uint64_t ModelRegistry::latest_version_on_disk(
    const std::string& scenario) const {
  std::error_code ec;
  std::uint64_t latest = 0;
  for (const auto& entry :
       fs::directory_iterator(scenario_dir(scenario), ec)) {
    latest = std::max(latest,
                      parse_version_filename(entry.path().filename().string()));
  }
  return latest;  // 0 when the directory is missing or holds no checkpoints
}

ServedModelPtr ModelRegistry::load_version(const std::string& scenario,
                                           std::uint64_t version) {
  nn::LoadedModel loaded =
      nn::load_model_file(checkpoint_path(scenario, version));
  if (loaded.info.meta.scenario != scenario)
    throw std::runtime_error("ModelRegistry: checkpoint for '" + scenario +
                             "' names scenario '" +
                             loaded.info.meta.scenario + "'");
  if (loaded.info.meta.model_version != version)
    throw std::runtime_error(
        "ModelRegistry: checkpoint v" + std::to_string(version) +
        " header says version " +
        std::to_string(loaded.info.meta.model_version));
  auto served = std::make_shared<ServedModel>();
  served->info = loaded.info;
  served->model = std::move(loaded.model);
  ++stats_.loads;
  return served;
}

void ModelRegistry::evict_if_over_capacity() {
  while (cache_.size() > opt_.cache_capacity) {
    auto victim = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->second.pinned) continue;
      if (victim == cache_.end() ||
          it->second.last_used < victim->second.last_used)
        victim = it;
    }
    if (victim == cache_.end()) return;  // everything pinned: overflow
    cache_.erase(victim);
    ++stats_.evictions;
  }
}

std::uint64_t ModelRegistry::publish(const std::string& scenario,
                                     const nn::Mlp& net) {
  check_scenario_name(scenario);
  std::lock_guard<std::mutex> lock(mu_);

  std::error_code ec;
  fs::create_directories(scenario_dir(scenario), ec);
  if (ec)
    throw std::runtime_error("ModelRegistry: cannot create '" +
                             scenario_dir(scenario) + "': " + ec.message());

  const std::uint64_t version = latest_version_on_disk(scenario) + 1;
  nn::CheckpointMeta meta;
  meta.scenario = scenario;
  meta.model_version = version;

  // Atomic publish: full write to a temp name in the same directory, then
  // rename over the final name. Readers either see the old directory state
  // or the complete new checkpoint, never a partial file.
  const std::string final_path = checkpoint_path(scenario, version);
  const std::string tmp_path = final_path + ".tmp";
  nn::save_model_file(net, tmp_path, meta);
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    throw std::runtime_error("ModelRegistry: rename to '" + final_path +
                             "' failed");
  }
  ++stats_.publishes;

  // Hot-swap: a resident entry flips to the new version immediately (the
  // published file is the authoritative copy, so reload it rather than
  // trusting the caller's net to stay untouched). Non-resident scenarios
  // load lazily on their next acquire().
  if (auto it = cache_.find(scenario); it != cache_.end())
    it->second.model = load_version(scenario, version);
  return version;
}

ServedModelPtr ModelRegistry::acquire(const std::string& scenario) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = cache_.find(scenario); it != cache_.end()) {
    ++stats_.hits;
    it->second.last_used = ++tick_;
    return it->second.model;
  }
  const std::uint64_t version = latest_version_on_disk(scenario);
  if (version == 0)
    throw std::out_of_range("ModelRegistry: no published checkpoint for '" +
                            scenario + "'");
  ++stats_.misses;
  Entry entry;
  entry.model = load_version(scenario, version);
  entry.last_used = ++tick_;
  auto ptr = entry.model;
  cache_[scenario] = std::move(entry);
  evict_if_over_capacity();
  return ptr;
}

void ModelRegistry::pin(const std::string& scenario) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(scenario);
  if (it == cache_.end()) {
    const std::uint64_t version = latest_version_on_disk(scenario);
    if (version == 0)
      throw std::out_of_range("ModelRegistry: no published checkpoint for '" +
                              scenario + "'");
    ++stats_.misses;
    Entry entry;
    entry.model = load_version(scenario, version);
    entry.last_used = ++tick_;
    it = cache_.emplace(scenario, std::move(entry)).first;
  }
  it->second.pinned = true;
  evict_if_over_capacity();
}

void ModelRegistry::unpin(const std::string& scenario) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = cache_.find(scenario); it != cache_.end())
    it->second.pinned = false;
  evict_if_over_capacity();
}

std::vector<ModelInfo> ModelRegistry::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, ModelInfo> infos;
  std::error_code ec;
  for (const auto& dir : fs::directory_iterator(root_, ec)) {
    if (!dir.is_directory()) continue;
    const std::string scenario = dir.path().filename().string();
    ModelInfo info;
    info.scenario = scenario;
    info.version = latest_version_on_disk(scenario);
    if (info.version == 0) continue;
    infos[scenario] = info;
  }
  for (const auto& [scenario, entry] : cache_) {
    ModelInfo& info = infos[scenario];
    info.scenario = scenario;
    info.resident = true;
    info.pinned = entry.pinned;
    info.checksum = entry.model->info.checksum;
    info.version = std::max(info.version, entry.model->info.meta.model_version);
  }
  std::vector<ModelInfo> out;
  out.reserve(infos.size());
  for (auto& [scenario, info] : infos) out.push_back(std::move(info));
  return out;
}

RegistryStats ModelRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sgm::serve
