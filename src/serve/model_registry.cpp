#include "serve/model_registry.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "util/check.hpp"

namespace sgm::serve {

namespace fs = std::filesystem;

namespace {

void check_scenario_name(const std::string& scenario) {
  SGM_CHECK_ARG(!scenario.empty(), "ModelRegistry: empty scenario name");
  for (const char c : scenario) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == '-' || c == '.';
    SGM_CHECK_ARG(ok, "ModelRegistry: scenario name '", scenario,
                  "' contains characters outside [A-Za-z0-9._-]");
  }
  SGM_CHECK_ARG(scenario[0] != '.', "ModelRegistry: scenario name '",
                scenario, "' may not start with '.'");
}

/// Parses "v<N>.ckpt" -> N; 0 when the name does not match.
std::uint64_t parse_version_filename(const std::string& name) {
  if (name.size() < 7 || name[0] != 'v' ||
      name.compare(name.size() - 5, 5, ".ckpt") != 0)
    return 0;
  std::uint64_t v = 0;
  for (std::size_t i = 1; i + 5 < name.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return 0;
    v = v * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return v;
}

}  // namespace

ModelRegistry::ModelRegistry(std::string root, RegistryOptions opt)
    : root_(std::move(root)), opt_(opt) {
  SGM_CHECK_ARG(opt_.cache_capacity >= 1,
                "ModelRegistry: cache_capacity must be >= 1");
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec)
    throw std::runtime_error("ModelRegistry: cannot create root '" + root_ +
                             "': " + ec.message());
}

std::string ModelRegistry::scenario_dir(const std::string& scenario) const {
  return root_ + "/" + scenario;
}

std::string ModelRegistry::checkpoint_path(const std::string& scenario,
                                           std::uint64_t version) const {
  return scenario_dir(scenario) + "/v" + std::to_string(version) + ".ckpt";
}

std::uint64_t ModelRegistry::latest_version_on_disk(
    const std::string& scenario) const {
  std::error_code ec;
  std::uint64_t latest = 0;
  for (const auto& entry :
       fs::directory_iterator(scenario_dir(scenario), ec)) {
    latest = std::max(latest,
                      parse_version_filename(entry.path().filename().string()));
  }
  return latest;  // 0 when the directory is missing or holds no checkpoints
}

ServedModelPtr ModelRegistry::load_version(const std::string& scenario,
                                           std::uint64_t version) {
  nn::LoadedModel loaded =
      nn::load_model_file(checkpoint_path(scenario, version));
  SGM_CHECK(loaded.info.meta.scenario == scenario,
            "ModelRegistry: checkpoint for '", scenario, "' names scenario '",
            loaded.info.meta.scenario, "'");
  SGM_CHECK(loaded.info.meta.model_version == version,
            "ModelRegistry: checkpoint v", version, " header says version ",
            loaded.info.meta.model_version);
  auto served = std::make_shared<ServedModel>();
  served->info = loaded.info;
  served->model = std::move(loaded.model);
  ++stats_.loads;
  return served;
}

void ModelRegistry::evict_if_over_capacity() {
  while (cache_.size() > opt_.cache_capacity) {
    auto victim = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->second.pinned) continue;
      if (victim == cache_.end() ||
          it->second.last_used < victim->second.last_used)
        victim = it;
    }
    if (victim == cache_.end()) return;  // everything pinned: overflow
    cache_.erase(victim);
    ++stats_.evictions;
  }
}

std::uint64_t ModelRegistry::publish(const std::string& scenario,
                                     const nn::Mlp& net) {
  check_scenario_name(scenario);
  util::MutexLock lock(mu_);

  std::error_code ec;
  fs::create_directories(scenario_dir(scenario), ec);
  if (ec)
    throw std::runtime_error("ModelRegistry: cannot create '" +
                             scenario_dir(scenario) + "': " + ec.message());

  const std::uint64_t version = latest_version_on_disk(scenario) + 1;
  // Version monotonicity: the version we are about to write must strictly
  // exceed whatever is resident — a violation means a checkpoint file was
  // deleted out from under us or the resident entry is corrupt.
  if (auto it = cache_.find(scenario); it != cache_.end())
    SGM_CHECK(version > it->second.model->info.meta.model_version,
              "ModelRegistry: publishing v", version, " for '", scenario,
              "' but v", it->second.model->info.meta.model_version,
              " is already resident");
  nn::CheckpointMeta meta;
  meta.scenario = scenario;
  meta.model_version = version;

  // Atomic publish: full write to a temp name in the same directory, then
  // rename over the final name. Readers either see the old directory state
  // or the complete new checkpoint, never a partial file.
  const std::string final_path = checkpoint_path(scenario, version);
  const std::string tmp_path = final_path + ".tmp";
  nn::save_model_file(net, tmp_path, meta);
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    throw std::runtime_error("ModelRegistry: rename to '" + final_path +
                             "' failed");
  }
  ++stats_.publishes;

  // Hot-swap: a resident entry flips to the new version immediately (the
  // published file is the authoritative copy, so reload it rather than
  // trusting the caller's net to stay untouched). Non-resident scenarios
  // load lazily on their next acquire().
  if (auto it = cache_.find(scenario); it != cache_.end())
    it->second.model = load_version(scenario, version);
  SGM_AUDIT(audit_locked());
  return version;
}

ServedModelPtr ModelRegistry::acquire(const std::string& scenario) {
  util::MutexLock lock(mu_);
  if (auto it = cache_.find(scenario); it != cache_.end()) {
    ++stats_.hits;
    it->second.last_used = ++tick_;
    return it->second.model;
  }
  const std::uint64_t version = latest_version_on_disk(scenario);
  if (version == 0)
    throw std::out_of_range("ModelRegistry: no published checkpoint for '" +
                            scenario + "'");
  ++stats_.misses;
  Entry entry;
  entry.model = load_version(scenario, version);
  entry.last_used = ++tick_;
  auto ptr = entry.model;
  cache_[scenario] = std::move(entry);
  evict_if_over_capacity();
  SGM_AUDIT(audit_locked());
  return ptr;
}

void ModelRegistry::pin(const std::string& scenario) {
  util::MutexLock lock(mu_);
  auto it = cache_.find(scenario);
  if (it == cache_.end()) {
    const std::uint64_t version = latest_version_on_disk(scenario);
    if (version == 0)
      throw std::out_of_range("ModelRegistry: no published checkpoint for '" +
                              scenario + "'");
    ++stats_.misses;
    Entry entry;
    entry.model = load_version(scenario, version);
    entry.last_used = ++tick_;
    it = cache_.emplace(scenario, std::move(entry)).first;
  }
  it->second.pinned = true;
  evict_if_over_capacity();
}

void ModelRegistry::unpin(const std::string& scenario) {
  util::MutexLock lock(mu_);
  if (auto it = cache_.find(scenario); it != cache_.end())
    it->second.pinned = false;
  evict_if_over_capacity();
}

std::vector<ModelInfo> ModelRegistry::list() const {
  util::MutexLock lock(mu_);
  std::map<std::string, ModelInfo> infos;
  std::error_code ec;
  for (const auto& dir : fs::directory_iterator(root_, ec)) {
    if (!dir.is_directory()) continue;
    const std::string scenario = dir.path().filename().string();
    ModelInfo info;
    info.scenario = scenario;
    info.version = latest_version_on_disk(scenario);
    if (info.version == 0) continue;
    infos[scenario] = info;
  }
  for (const auto& [scenario, entry] : cache_) {
    ModelInfo& info = infos[scenario];
    info.scenario = scenario;
    info.resident = true;
    info.pinned = entry.pinned;
    info.checksum = entry.model->info.checksum;
    info.version = std::max(info.version, entry.model->info.meta.model_version);
  }
  std::vector<ModelInfo> out;
  out.reserve(infos.size());
  for (auto& [scenario, info] : infos) out.push_back(std::move(info));
  return out;
}

RegistryStats ModelRegistry::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

void ModelRegistry::audit() const {
  util::MutexLock lock(mu_);
  audit_locked();
}

void ModelRegistry::audit_locked() const {
  std::size_t pinned = 0;
  for (const auto& [scenario, entry] : cache_) {
    SGM_CHECK(entry.model != nullptr, "ModelRegistry audit: resident '",
              scenario, "' has a null model");
    const nn::CheckpointMeta& meta = entry.model->info.meta;
    SGM_CHECK(meta.scenario == scenario, "ModelRegistry audit: entry '",
              scenario, "' holds a checkpoint for '", meta.scenario, "'");
    SGM_CHECK(meta.model_version >= 1, "ModelRegistry audit: resident '",
              scenario, "' has version 0 (never a valid publish)");
    const std::uint64_t latest = latest_version_on_disk(scenario);
    SGM_CHECK(meta.model_version <= latest, "ModelRegistry audit: resident '",
              scenario, "' is at v", meta.model_version,
              " but the latest checkpoint on disk is v", latest);
    std::error_code ec;
    SGM_CHECK(fs::exists(checkpoint_path(scenario, meta.model_version), ec),
              "ModelRegistry audit: resident '", scenario, "' v",
              meta.model_version, " has no backing checkpoint file");
    SGM_CHECK(entry.last_used <= tick_, "ModelRegistry audit: resident '",
              scenario, "' was last used at tick ", entry.last_used,
              " but the registry clock is only at ", tick_);
    if (entry.pinned) ++pinned;
  }
  // evict_if_over_capacity only ever leaves an over-capacity cache when no
  // victim exists, i.e. when every entry is pinned.
  SGM_CHECK(cache_.size() <= opt_.cache_capacity || pinned == cache_.size(),
            "ModelRegistry audit: ", cache_.size(), " resident entries exceed "
            "capacity ", opt_.cache_capacity, " with only ", pinned,
            " pinned");
  SGM_CHECK(stats_.loads >= stats_.misses, "ModelRegistry audit: ",
            stats_.loads, " loads < ", stats_.misses,
            " misses (every miss is a load)");
}

}  // namespace sgm::serve
