#include "serve/model_registry.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "util/check.hpp"
#include "util/failpoint.hpp"
#include "util/fs.hpp"

namespace sgm::serve {

namespace fs = std::filesystem;

namespace {

void check_scenario_name(const std::string& scenario) {
  SGM_CHECK_ARG(!scenario.empty(), "ModelRegistry: empty scenario name");
  for (const char c : scenario) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == '-' || c == '.';
    SGM_CHECK_ARG(ok, "ModelRegistry: scenario name '", scenario,
                  "' contains characters outside [A-Za-z0-9._-]");
  }
  SGM_CHECK_ARG(scenario[0] != '.', "ModelRegistry: scenario name '",
                scenario, "' may not start with '.'");
}

constexpr const char* kQuarantineSuffix = ".quarantined";

/// Parses "v<N>.ckpt" -> N; 0 when the name does not match. With
/// include_quarantined, "v<N>.ckpt.quarantined" parses too — sidelined
/// versions stay reserved so publish never reuses their number.
std::uint64_t parse_version_filename(std::string name,
                                     bool include_quarantined = false) {
  const std::size_t qlen = std::string(kQuarantineSuffix).size();
  if (include_quarantined && name.size() > qlen &&
      name.compare(name.size() - qlen, qlen, kQuarantineSuffix) == 0)
    name.resize(name.size() - qlen);
  if (name.size() < 7 || name[0] != 'v' ||
      name.compare(name.size() - 5, 5, ".ckpt") != 0)
    return 0;
  std::uint64_t v = 0;
  for (std::size_t i = 1; i + 5 < name.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return 0;
    v = v * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return v;
}

}  // namespace

ModelRegistry::ModelRegistry(std::string root, RegistryOptions opt)
    : root_(std::move(root)), opt_(opt) {
  SGM_CHECK_ARG(opt_.cache_capacity >= 1,
                "ModelRegistry: cache_capacity must be >= 1");
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec)
    throw std::runtime_error("ModelRegistry: cannot create root '" + root_ +
                             "': " + ec.message());
  // Sweep residue of publishers killed mid-write: a stale `*.tmp` can
  // never be loaded (it doesn't parse as v<N>.ckpt) but wastes disk and
  // would shadow the next publish's temp name.
  util::remove_stale_temp_files(root_);
  for (const auto& dir : fs::directory_iterator(root_, ec)) {
    if (dir.is_directory())
      util::remove_stale_temp_files(dir.path().string());
  }
}

std::string ModelRegistry::scenario_dir(const std::string& scenario) const {
  return root_ + "/" + scenario;
}

std::string ModelRegistry::checkpoint_path(const std::string& scenario,
                                           std::uint64_t version) const {
  return scenario_dir(scenario) + "/v" + std::to_string(version) + ".ckpt";
}

std::uint64_t ModelRegistry::latest_version_on_disk(
    const std::string& scenario, bool include_quarantined) const {
  std::error_code ec;
  std::uint64_t latest = 0;
  for (const auto& entry :
       fs::directory_iterator(scenario_dir(scenario), ec)) {
    latest = std::max(
        latest, parse_version_filename(entry.path().filename().string(),
                                       include_quarantined));
  }
  return latest;  // 0 when the directory is missing or holds no checkpoints
}

ServedModelPtr ModelRegistry::load_version(const std::string& scenario,
                                           std::uint64_t version) {
  nn::LoadedModel loaded =
      nn::load_model_file(checkpoint_path(scenario, version));
  SGM_CHECK(loaded.info.meta.scenario == scenario,
            "ModelRegistry: checkpoint for '", scenario, "' names scenario '",
            loaded.info.meta.scenario, "'");
  SGM_CHECK(loaded.info.meta.model_version == version,
            "ModelRegistry: checkpoint v", version, " header says version ",
            loaded.info.meta.model_version);
  auto served = std::make_shared<ServedModel>();
  served->info = loaded.info;
  served->model = std::move(loaded.model);
  ++stats_.loads;
  return served;
}

ServedModelPtr ModelRegistry::load_latest_intact(const std::string& scenario) {
  for (;;) {
    const std::uint64_t version = latest_version_on_disk(scenario);
    if (version == 0)
      throw std::out_of_range("ModelRegistry: no published checkpoint for '" +
                              scenario + "'");
    try {
      return load_version(scenario, version);
    } catch (const std::out_of_range&) {
      throw;  // not a file problem; don't quarantine
    } catch (const std::exception&) {
      // Checksum/truncation/header failure: sideline the file and fall
      // back to the next-latest version. Each pass removes one candidate,
      // so this terminates.
      util::quarantine_file(checkpoint_path(scenario, version));
      ++stats_.quarantined;
    }
  }
}

void ModelRegistry::evict_if_over_capacity() {
  while (cache_.size() > opt_.cache_capacity) {
    auto victim = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->second.pinned) continue;
      if (victim == cache_.end() ||
          it->second.last_used < victim->second.last_used)
        victim = it;
    }
    if (victim == cache_.end()) return;  // everything pinned: overflow
    cache_.erase(victim);
    ++stats_.evictions;
  }
}

std::uint64_t ModelRegistry::publish(const std::string& scenario,
                                     const nn::Mlp& net) {
  check_scenario_name(scenario);
  util::MutexLock lock(mu_);

  std::error_code ec;
  fs::create_directories(scenario_dir(scenario), ec);
  if (ec)
    throw std::runtime_error("ModelRegistry: cannot create '" +
                             scenario_dir(scenario) + "': " + ec.message());

  // Allocate past quarantined versions too: reusing a sidelined number
  // would let `vN.ckpt.quarantined` shadow a fresh, intact vN.
  const std::uint64_t version =
      latest_version_on_disk(scenario, /*include_quarantined=*/true) + 1;
  // Version monotonicity: the version we are about to write must strictly
  // exceed whatever is resident — a violation means a checkpoint file was
  // deleted out from under us or the resident entry is corrupt.
  if (auto it = cache_.find(scenario); it != cache_.end())
    SGM_CHECK(version > it->second.model->info.meta.model_version,
              "ModelRegistry: publishing v", version, " for '", scenario,
              "' but v", it->second.model->info.meta.model_version,
              " is already resident");
  nn::CheckpointMeta meta;
  meta.scenario = scenario;
  meta.model_version = version;

  // Crash-safe publish: save_model_file writes through
  // util::write_file_durable (temp + fsync + rename + dir fsync), so
  // readers see either the old directory state or the complete new
  // checkpoint — never a partial file — and the publish survives power
  // loss. The failpoints bracket the protocol for the chaos tests.
  SGM_FAILPOINT("registry.publish.before_write");
  nn::save_model_file(net, checkpoint_path(scenario, version), meta);
  SGM_FAILPOINT("registry.publish.after_write");
  ++stats_.publishes;

  // Hot-swap: a resident entry flips to the new version immediately (the
  // published file is the authoritative copy, so reload it rather than
  // trusting the caller's net to stay untouched). Non-resident scenarios
  // load lazily on their next acquire().
  if (auto it = cache_.find(scenario); it != cache_.end())
    it->second.model = load_version(scenario, version);
  SGM_AUDIT(audit_locked());
  return version;
}

ServedModelPtr ModelRegistry::acquire(const std::string& scenario) {
  util::MutexLock lock(mu_);
  if (auto it = cache_.find(scenario); it != cache_.end()) {
    ++stats_.hits;
    it->second.last_used = ++tick_;
    return it->second.model;
  }
  Entry entry;
  entry.model = load_latest_intact(scenario);
  ++stats_.misses;
  entry.last_used = ++tick_;
  auto ptr = entry.model;
  cache_[scenario] = std::move(entry);
  evict_if_over_capacity();
  SGM_AUDIT(audit_locked());
  return ptr;
}

void ModelRegistry::pin(const std::string& scenario) {
  util::MutexLock lock(mu_);
  auto it = cache_.find(scenario);
  if (it == cache_.end()) {
    Entry entry;
    entry.model = load_latest_intact(scenario);
    ++stats_.misses;
    entry.last_used = ++tick_;
    it = cache_.emplace(scenario, std::move(entry)).first;
  }
  it->second.pinned = true;
  evict_if_over_capacity();
}

void ModelRegistry::unpin(const std::string& scenario) {
  util::MutexLock lock(mu_);
  if (auto it = cache_.find(scenario); it != cache_.end())
    it->second.pinned = false;
  evict_if_over_capacity();
}

std::vector<ModelInfo> ModelRegistry::list() const {
  util::MutexLock lock(mu_);
  std::map<std::string, ModelInfo> infos;
  std::error_code ec;
  for (const auto& dir : fs::directory_iterator(root_, ec)) {
    if (!dir.is_directory()) continue;
    const std::string scenario = dir.path().filename().string();
    ModelInfo info;
    info.scenario = scenario;
    info.version = latest_version_on_disk(scenario);
    if (info.version == 0) continue;
    infos[scenario] = info;
  }
  for (const auto& [scenario, entry] : cache_) {
    ModelInfo& info = infos[scenario];
    info.scenario = scenario;
    info.resident = true;
    info.pinned = entry.pinned;
    info.checksum = entry.model->info.checksum;
    info.version = std::max(info.version, entry.model->info.meta.model_version);
  }
  std::vector<ModelInfo> out;
  out.reserve(infos.size());
  for (auto& [scenario, info] : infos) out.push_back(std::move(info));
  return out;
}

RegistryStats ModelRegistry::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

void ModelRegistry::audit() const {
  util::MutexLock lock(mu_);
  audit_locked();
}

void ModelRegistry::audit_locked() const {
  std::size_t pinned = 0;
  for (const auto& [scenario, entry] : cache_) {
    SGM_CHECK(entry.model != nullptr, "ModelRegistry audit: resident '",
              scenario, "' has a null model");
    const nn::CheckpointMeta& meta = entry.model->info.meta;
    SGM_CHECK(meta.scenario == scenario, "ModelRegistry audit: entry '",
              scenario, "' holds a checkpoint for '", meta.scenario, "'");
    SGM_CHECK(meta.model_version >= 1, "ModelRegistry audit: resident '",
              scenario, "' has version 0 (never a valid publish)");
    const std::uint64_t latest = latest_version_on_disk(scenario);
    SGM_CHECK(meta.model_version <= latest, "ModelRegistry audit: resident '",
              scenario, "' is at v", meta.model_version,
              " but the latest checkpoint on disk is v", latest);
    std::error_code ec;
    SGM_CHECK(fs::exists(checkpoint_path(scenario, meta.model_version), ec),
              "ModelRegistry audit: resident '", scenario, "' v",
              meta.model_version, " has no backing checkpoint file");
    SGM_CHECK(entry.last_used <= tick_, "ModelRegistry audit: resident '",
              scenario, "' was last used at tick ", entry.last_used,
              " but the registry clock is only at ", tick_);
    if (entry.pinned) ++pinned;
  }
  // evict_if_over_capacity only ever leaves an over-capacity cache when no
  // victim exists, i.e. when every entry is pinned.
  SGM_CHECK(cache_.size() <= opt_.cache_capacity || pinned == cache_.size(),
            "ModelRegistry audit: ", cache_.size(), " resident entries exceed "
            "capacity ", opt_.cache_capacity, " with only ", pinned,
            " pinned");
  SGM_CHECK(stats_.loads >= stats_.misses, "ModelRegistry audit: ",
            stats_.loads, " loads < ", stats_.misses,
            " misses (every miss is a load)");
}

}  // namespace sgm::serve
