#pragma once
// Versioned model registry — the serving engine's source of truth for which
// network answers a scenario's queries.
//
// On disk, every publish writes one immutable checkpoint
//     <root>/<scenario>/v<N>.ckpt        (nn/serialize v2 binary: header
//                                         with scenario name, MlpConfig,
//                                         version N, payload checksum)
// through util::write_file_durable (temp file + fsync file + atomic rename
// + fsync directory), so a loader can never observe a half-written
// checkpoint, a completed publish survives power loss, and a crashed
// publisher leaves at most a stale temp file (swept on registry open).
// Versions are monotonically increasing per scenario; old versions stay on
// disk (they are the rollback story).
//
// Corruption containment: a checkpoint that fails its checksum (or any
// header/parse check) at load time is quarantined — renamed to
// `v<N>.ckpt.quarantined` — and the loader falls back to the next-latest
// intact version, so one bad file degrades that scenario by one version
// instead of failing the registry. Quarantined versions still count for
// version allocation (publish never reuses a quarantined number); the
// count is surfaced as RegistryStats::quarantined and, via the HTTP
// front end, the sgm_registry_quarantined_total metric.
//
// In memory, a load-on-demand LRU cache holds the resident models:
//  * acquire() returns a shared_ptr<const ServedModel> — an immutable
//    (model, version, checksum) triple. Holding the pointer is what makes
//    responses attributable: whatever the publisher does, the batch you are
//    serving keeps exactly the version you acquired (no torn reads).
//  * publish() hot-swaps the resident entry atomically under the registry
//    mutex: the next acquire() sees the new version, in-flight batches
//    finish on the old one, which dies with its last shared_ptr.
//  * pin() marks a scenario immune to LRU eviction (and loads it if
//    needed); unpin() returns it to the LRU pool. Eviction only ever drops
//    the registry's own reference.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nn/serialize.hpp"
#include "util/mutex.hpp"

namespace sgm::serve {

struct RegistryOptions {
  /// Maximum resident models. Unpinned entries beyond this are evicted
  /// least-recently-acquired first; pinned entries count toward the limit
  /// but are never evicted (so all-pinned registries may exceed it).
  std::size_t cache_capacity = 8;
};

/// Immutable once published; shared by every in-flight batch on it.
struct ServedModel {
  nn::CheckpointInfo info;  ///< scenario, version, checksum, architecture
  std::unique_ptr<const nn::Mlp> model;
};
using ServedModelPtr = std::shared_ptr<const ServedModel>;

struct ModelInfo {
  std::string scenario;
  std::uint64_t version = 0;   ///< latest on disk
  std::uint64_t checksum = 0;  ///< 0 unless resident
  bool resident = false;
  bool pinned = false;
};

struct RegistryStats {
  std::uint64_t hits = 0;        ///< acquire() served from cache
  std::uint64_t misses = 0;      ///< acquire() had to load from disk
  std::uint64_t loads = 0;       ///< checkpoint files read (misses + swaps)
  std::uint64_t evictions = 0;
  std::uint64_t publishes = 0;
  std::uint64_t quarantined = 0;  ///< corrupt checkpoints sidelined at load
};

class ModelRegistry {
 public:
  /// `root` is created if absent. Throws std::runtime_error when the
  /// directory cannot be created.
  explicit ModelRegistry(std::string root, RegistryOptions opt = {});

  /// Publishes `net` as the next version of `scenario` (atomic write +
  /// resident hot-swap). Returns the new version number. Scenario names are
  /// restricted to [A-Za-z0-9._-] (they become directory names).
  std::uint64_t publish(const std::string& scenario, const nn::Mlp& net);

  /// Latest published version, loading (and caching) on demand. Throws
  /// std::out_of_range when the scenario has never been published.
  ServedModelPtr acquire(const std::string& scenario);

  /// Loads (if needed) and protects `scenario` from eviction.
  void pin(const std::string& scenario);
  void unpin(const std::string& scenario);

  /// Disk ∪ cache view, sorted by scenario name.
  std::vector<ModelInfo> list() const;

  RegistryStats stats() const;

  const std::string& root() const { return root_; }

  /// Heavy invariant sweep (SGM_CHECK-based): every resident entry carries a
  /// live model whose header names its cache key and a version that exists
  /// on disk and never exceeds the latest published one, LRU ticks never run
  /// ahead of the registry clock, and the cache only exceeds capacity when
  /// the overflow is entirely pinned. Throws util::CheckError on violation.
  /// publish()/acquire() run it when SGM_AUDIT=1; tier-1 tests call it
  /// directly.
  void audit() const SGM_EXCLUDES(mu_);

 private:
  struct Entry {
    ServedModelPtr model;
    bool pinned = false;
    std::uint64_t last_used = 0;  ///< LRU tick of the last acquire
  };

  // Pure path helpers; no shared state.
  std::string scenario_dir(const std::string& scenario) const;
  std::string checkpoint_path(const std::string& scenario,
                              std::uint64_t version) const;
  // Helpers that touch cache_/stats_ (or are only called from sections that
  // do) require mu_; the annotations make the discipline checkable.
  /// Latest version present on disk; with include_quarantined, sidelined
  /// `*.quarantined` files count too (version allocation must never reuse
  /// a quarantined number, but loads must skip them).
  std::uint64_t latest_version_on_disk(const std::string& scenario,
                                       bool include_quarantined = false) const
      SGM_REQUIRES(mu_);
  ServedModelPtr load_version(const std::string& scenario,
                              std::uint64_t version) SGM_REQUIRES(mu_);
  /// Loads the newest version that passes its checksum, quarantining every
  /// corrupt candidate it skips. Throws std::out_of_range when no intact
  /// version remains.
  ServedModelPtr load_latest_intact(const std::string& scenario)
      SGM_REQUIRES(mu_);
  void evict_if_over_capacity() SGM_REQUIRES(mu_);
  void audit_locked() const SGM_REQUIRES(mu_);

  std::string root_;
  RegistryOptions opt_;

  mutable util::Mutex mu_;
  std::map<std::string, Entry> cache_ SGM_GUARDED_BY(mu_);
  std::uint64_t tick_ SGM_GUARDED_BY(mu_) = 0;
  RegistryStats stats_ SGM_GUARDED_BY(mu_);
};

}  // namespace sgm::serve
