#include "pinn/navier_stokes.hpp"

#include <cmath>

#include "pinn/geometry.hpp"
#include "pinn/loss.hpp"
#include "pinn/point_cloud.hpp"

namespace sgm::pinn {

using tensor::Matrix;
using tensor::Tape;
using tensor::VarId;

NsResiduals navier_stokes_residuals(Tape& tape,
                                    const nn::Mlp::TapeOutputs& out,
                                    double nu, VarId nu_t) {
  const VarId u = tensor::col(tape, out.y, 0);
  const VarId v = tensor::col(tape, out.y, 1);
  const VarId ux = tensor::col(tape, out.dy[0], 0);
  const VarId uy = tensor::col(tape, out.dy[1], 0);
  const VarId vx = tensor::col(tape, out.dy[0], 1);
  const VarId vy = tensor::col(tape, out.dy[1], 1);
  const VarId px = tensor::col(tape, out.dy[0], 2);
  const VarId py = tensor::col(tape, out.dy[1], 2);
  const VarId uxx = tensor::col(tape, out.d2y[0], 0);
  const VarId uyy = tensor::col(tape, out.d2y[1], 0);
  const VarId vxx = tensor::col(tape, out.d2y[0], 1);
  const VarId vyy = tensor::col(tape, out.d2y[1], 1);

  NsResiduals r;
  r.continuity = tensor::add(tape, ux, vy);

  const VarId lap_u = tensor::add(tape, uxx, uyy);
  const VarId lap_v = tensor::add(tape, vxx, vyy);
  VarId visc_u, visc_v;
  if (nu_t == tensor::kNoVar) {
    visc_u = tensor::scale(tape, lap_u, nu);
    visc_v = tensor::scale(tape, lap_v, nu);
  } else {
    const VarId nu_eff = tensor::add_scalar(tape, nu_t, nu);
    visc_u = tensor::mul(tape, nu_eff, lap_u);
    visc_v = tensor::mul(tape, nu_eff, lap_v);
  }

  const VarId conv_u = tensor::add(tape, tensor::mul(tape, u, ux),
                                   tensor::mul(tape, v, uy));
  const VarId conv_v = tensor::add(tape, tensor::mul(tape, u, vx),
                                   tensor::mul(tape, v, vy));
  r.momentum_x =
      tensor::sub(tape, tensor::add(tape, conv_u, px), visc_u);
  r.momentum_y =
      tensor::sub(tape, tensor::add(tape, conv_v, py), visc_v);
  return r;
}

LdcProblem::LdcProblem(const Options& options,
                       std::shared_ptr<const cfd::LdcSolution> reference)
    : opt_(options),
      nu_(options.lid_velocity / options.reynolds),
      reference_(std::move(reference)) {
  util::Rng rng(opt_.seed);
  Rectangle square(0, 1, 0, 1);
  interior_ = square.sample_interior(opt_.interior_points, rng);
  wall_distance_ = Matrix(interior_.rows(), 1);
  for (std::size_t i = 0; i < interior_.rows(); ++i)
    wall_distance_(i, 0) =
        unit_square_wall_distance(interior_(i, 0), interior_(i, 1));

  const std::size_t per_side = opt_.boundary_points / 4;
  boundary_ = Matrix(4 * per_side, 2);
  boundary_uv_ = Matrix(4 * per_side, 2);
  const Rectangle::Side sides[4] = {
      Rectangle::Side::kBottom, Rectangle::Side::kTop, Rectangle::Side::kLeft,
      Rectangle::Side::kRight};
  std::size_t row = 0;
  for (const auto side : sides) {
    Matrix pts = square.sample_side(side, per_side, rng);
    for (std::size_t i = 0; i < per_side; ++i, ++row) {
      boundary_(row, 0) = pts(i, 0);
      boundary_(row, 1) = pts(i, 1);
      boundary_uv_(row, 0) =
          side == Rectangle::Side::kTop ? opt_.lid_velocity : 0.0;
      boundary_uv_(row, 1) = 0.0;
    }
  }
}

LdcProblem::BatchTerms LdcProblem::interior_terms(
    Tape& tape, const nn::Mlp& net, const nn::Mlp::Binding& binding,
    const Matrix& batch) const {
  auto out = net.forward_on_tape(tape, binding, batch, /*n_deriv=*/2);

  VarId nu_t = tensor::kNoVar;
  Matrix wall_d(batch.rows(), 1);
  for (std::size_t i = 0; i < batch.rows(); ++i)
    wall_d(i, 0) = unit_square_wall_distance(batch(i, 0), batch(i, 1));
  if (opt_.zero_equation)
    nu_t = zero_eq_nu_t(tape, out, 0, 1, wall_d, opt_.zero_eq);

  const NsResiduals res = navier_stokes_residuals(tape, out, nu_, nu_t);

  // Per-point squared residual (continuity + both momenta) — used both by
  // the loss and by the samplers' importance signal.
  const VarId per_point = tensor::add(
      tape, tensor::square(tape, res.continuity),
      tensor::add(tape, tensor::square(tape, res.momentum_x),
                  tensor::square(tape, res.momentum_y)));

  BatchTerms terms;
  terms.residual_sq_per_point = per_point;
  if (opt_.sdf_weighting) {
    terms.loss = tensor::weighted_mean(tape, per_point, wall_d);
  } else {
    terms.loss = tensor::mean_all(tape, per_point);
  }
  return terms;
}

VarId LdcProblem::batch_loss(Tape& tape, const nn::Mlp& net,
                             const nn::Mlp::Binding& binding,
                             const std::vector<std::uint32_t>& rows,
                             util::Rng& rng) const {
  const Matrix batch = gather_rows(interior_, rows);
  const BatchTerms terms = interior_terms(tape, net, binding, batch);

  // No-slip / moving-lid boundary mini-batch.
  const std::size_t nb =
      std::min<std::size_t>(opt_.boundary_batch, boundary_.rows());
  std::vector<std::uint32_t> brows(nb);
  for (auto& b : brows)
    b = static_cast<std::uint32_t>(rng.uniform_index(boundary_.rows()));
  const Matrix bpts = gather_rows(boundary_, brows);
  Matrix btarget(nb, 2);
  for (std::size_t i = 0; i < nb; ++i) {
    btarget(i, 0) = boundary_uv_(brows[i], 0);
    btarget(i, 1) = boundary_uv_(brows[i], 1);
  }
  auto bout = net.forward_on_tape(tape, binding, bpts, /*n_deriv=*/0);
  const VarId bu = tensor::col(tape, bout.y, 0);
  const VarId bv = tensor::col(tape, bout.y, 1);
  Matrix bu_t(nb, 1), bv_t(nb, 1);
  for (std::size_t i = 0; i < nb; ++i) {
    bu_t(i, 0) = btarget(i, 0);
    bv_t(i, 0) = btarget(i, 1);
  }
  const VarId bres_u = tensor::sub(tape, bu, tape.constant(std::move(bu_t)));
  const VarId bres_v = tensor::sub(tape, bv, tape.constant(std::move(bv_t)));
  const VarId bc_loss =
      tensor::add(tape, mse(tape, bres_u), mse(tape, bres_v));

  // Pressure gauge: cavity pressure is defined up to a constant; a tiny
  // penalty on the batch-mean pressure pins the gauge without biasing
  // gradients materially.
  const VarId p = tensor::col(tape, bout.y, 2);
  const VarId gauge = tensor::square(tape, tensor::mean_all(tape, p));

  return combine(tape, {{"pde", terms.loss, 1.0},
                        {"bc", bc_loss, opt_.boundary_weight},
                        {"gauge", gauge, 0.01}});
}

std::vector<double> LdcProblem::pointwise_residual(
    const nn::Mlp& net, const std::vector<std::uint32_t>& rows) const {
  Tape tape;
  const nn::Mlp::Binding binding = net.bind(tape);
  const Matrix batch = gather_rows(interior_, rows);
  const BatchTerms terms = interior_terms(tape, net, binding, batch);
  const Matrix& r = tape.value(terms.residual_sq_per_point);
  std::vector<double> score(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) score[i] = r(i, 0);
  return score;
}

std::vector<ValidationEntry> LdcProblem::validate(const nn::Mlp& net) const {
  if (!reference_) return {};
  const cfd::LdcSolution& ref = *reference_;
  const Matrix grid = make_grid(0.03, 0.97, 40, 0.03, 0.97, 40);
  const Matrix pred = net.forward(grid);

  double num_u = 0, den_u = 0, num_v = 0, den_v = 0;
  for (std::size_t i = 0; i < grid.rows(); ++i) {
    const double x = grid(i, 0), y = grid(i, 1);
    const double ru = ref.sample_u(x, y), rv = ref.sample_v(x, y);
    const double du = pred(i, 0) - ru, dv = pred(i, 1) - rv;
    num_u += du * du;
    den_u += ru * ru;
    num_v += dv * dv;
    den_v += rv * rv;
  }
  std::vector<ValidationEntry> out;
  out.push_back({"u", std::sqrt(num_u / (den_u > 0 ? den_u : 1.0))});
  out.push_back({"v", std::sqrt(num_v / (den_v > 0 ? den_v : 1.0))});

  if (opt_.zero_equation) {
    // nu_t from the network's derivatives vs nu_t evaluated on the FD
    // reference velocity field (central differences at grid spacing).
    double num_n = 0, den_n = 0;
    const double h = ref.h;
    Tape tape2;
    const nn::Mlp::Binding binding2 = net.bind(tape2);
    auto tout2 = net.forward_on_tape(tape2, binding2, grid, /*n_deriv=*/2);
    const Matrix& jx = tape2.value(tout2.dy[0]);
    const Matrix& jy = tape2.value(tout2.dy[1]);
    for (std::size_t i = 0; i < grid.rows(); ++i) {
      const double x = grid(i, 0), y = grid(i, 1);
      // PINN nu_t.
      const double ux = jx(i, 0), vx = jx(i, 1);
      const double uy = jy(i, 0), vy = jy(i, 1);
      const double g_pred = 2 * (ux * ux + vy * vy) + (uy + vx) * (uy + vx);
      const double lm = mixing_length(unit_square_wall_distance(x, y),
                                      opt_.zero_eq);
      const double nut_pred = lm * lm * std::sqrt(std::max(g_pred, 0.0));
      // Reference nu_t from FD derivatives of the reference field.
      const double rux = (ref.sample_u(x + h, y) - ref.sample_u(x - h, y)) /
                         (2 * h);
      const double ruy = (ref.sample_u(x, y + h) - ref.sample_u(x, y - h)) /
                         (2 * h);
      const double rvx = (ref.sample_v(x + h, y) - ref.sample_v(x - h, y)) /
                         (2 * h);
      const double rvy = (ref.sample_v(x, y + h) - ref.sample_v(x, y - h)) /
                         (2 * h);
      const double g_ref =
          2 * (rux * rux + rvy * rvy) + (ruy + rvx) * (ruy + rvx);
      const double nut_ref = lm * lm * std::sqrt(std::max(g_ref, 0.0));
      const double d = nut_pred - nut_ref;
      num_n += d * d;
      den_n += nut_ref * nut_ref;
    }
    out.push_back({"nu", std::sqrt(num_n / (den_n > 0 ? den_n : 1.0))});
  }
  return out;
}

}  // namespace sgm::pinn
