#pragma once
// Loss assembly (Eq. 4): squared-residual means with optional per-point
// weights, combined into one scalar training loss on the tape.

#include <string>
#include <vector>

#include "tensor/ops.hpp"

namespace sgm::pinn {

/// One named component of the total loss (for telemetry).
struct LossTerm {
  std::string name;
  tensor::VarId value = tensor::kNoVar;  ///< scalar (1x1) on the tape
  double weight = 1.0;
};

/// mean(residual^2) — the standard p=2 loss of Eq. 4.
tensor::VarId mse(tensor::Tape& tape, tensor::VarId residual);

/// mean(w .* residual^2) with constant per-point weights (e.g. the SDF
/// weighting Modulus applies to interior residuals).
tensor::VarId weighted_mse(tensor::Tape& tape, tensor::VarId residual,
                           const tensor::Matrix& weights);

/// weight_1 * term_1 + ... + weight_k * term_k as a tape scalar.
tensor::VarId combine(tensor::Tape& tape, const std::vector<LossTerm>& terms);

/// sqrt(x + eps) with derivatives — used by the zero-equation turbulence
/// closure (eps keeps the derivative finite at zero strain).
class SqrtEps final : public tensor::ElementwiseFunction {
 public:
  explicit SqrtEps(double eps = 1e-10) : eps_(eps) {}
  double eval(double x, int order) const override;

 private:
  double eps_;
};

/// The shared SqrtEps singleton (tape ops keep raw pointers to it).
const SqrtEps& sqrt_eps();

}  // namespace sgm::pinn
