#pragma once
// Small point-cloud utilities shared by problems, validation and benches.

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace sgm::pinn {

/// New matrix holding the selected rows of `m`, in the given order.
tensor::Matrix gather_rows(const tensor::Matrix& m,
                           const std::vector<std::uint32_t>& rows);

/// `n` evenly spaced values in [lo, hi] inclusive.
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Regular (nx * ny) x 2 grid covering [x0,x1] x [y0,y1], row-major in y
/// then x (interior-inclusive endpoints).
tensor::Matrix make_grid(double x0, double x1, std::size_t nx, double y0,
                         double y1, std::size_t ny);

/// Per-column min/max of a matrix (diagnostics).
struct ColumnRange {
  std::vector<double> min, max;
};
ColumnRange column_range(const tensor::Matrix& m);

}  // namespace sgm::pinn
