#include "pinn/train_checkpoint.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

#include "util/binio.hpp"
#include "util/fs.hpp"

namespace sgm::pinn {

namespace {

using util::binio::ByteReader;
using util::binio::fnv1a64;
using util::binio::put_f64;
using util::binio::put_u32;
using util::binio::put_u64;

constexpr char kMagic[] = "SGMTRNC1";  // 8 bytes, no NUL on disk
constexpr std::uint32_t kFormatVersion = 1;

void put_matrix(std::string& b, const tensor::Matrix& m) {
  put_u64(b, m.rows());
  put_u64(b, m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) put_f64(b, m.data()[i]);
}

tensor::Matrix read_matrix(ByteReader& r) {
  const std::uint64_t rows = r.u64();
  const std::uint64_t cols = r.u64();
  // 8 bytes per element: any honest shape fits in the remaining bytes.
  if (cols != 0 && rows > r.remaining() / (8 * cols))
    throw std::runtime_error("train checkpoint: implausible tensor shape");
  tensor::Matrix m(static_cast<std::size_t>(rows),
                   static_cast<std::size_t>(cols));
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = r.f64();
  return m;
}

void put_matrices(std::string& b, const std::vector<tensor::Matrix>& ms) {
  put_u64(b, ms.size());
  for (const auto& m : ms) put_matrix(b, m);
}

std::vector<tensor::Matrix> read_matrices(ByteReader& r) {
  const std::uint64_t count = r.u64();
  if (count > r.remaining() / 16)  // each matrix costs >= 16 header bytes
    throw std::runtime_error("train checkpoint: implausible tensor count");
  std::vector<tensor::Matrix> ms;
  ms.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) ms.push_back(read_matrix(r));
  return ms;
}

std::string encode_body(const TrainCheckpoint& ckpt) {
  std::string b;
  put_u64(b, ckpt.iteration);
  put_f64(b, ckpt.train_wall_s);
  put_f64(b, ckpt.loss_accum);
  put_u64(b, ckpt.loss_count);
  put_f64(b, ckpt.lr_scale);
  for (const std::uint64_t s : ckpt.rng.s) put_u64(b, s);
  put_f64(b, ckpt.rng.spare_normal);
  put_u64(b, ckpt.rng.has_spare ? 1 : 0);
  put_u64(b, ckpt.adam.iterations);
  put_f64(b, ckpt.adam.beta1_pow);
  put_f64(b, ckpt.adam.beta2_pow);
  put_matrices(b, ckpt.adam.m);
  put_matrices(b, ckpt.adam.v);
  put_matrices(b, ckpt.params);
  put_u64(b, ckpt.sampler.indices.size());
  for (const std::uint32_t idx : ckpt.sampler.indices) put_u32(b, idx);
  put_u64(b, ckpt.sampler.cursor);
  put_u64(b, ckpt.sampler.shuffled ? 1 : 0);
  return b;
}

TrainCheckpoint decode_body(ByteReader& r) {
  TrainCheckpoint ckpt;
  ckpt.iteration = r.u64();
  ckpt.train_wall_s = r.f64();
  ckpt.loss_accum = r.f64();
  ckpt.loss_count = r.u64();
  ckpt.lr_scale = r.f64();
  for (std::uint64_t& s : ckpt.rng.s) s = r.u64();
  ckpt.rng.spare_normal = r.f64();
  ckpt.rng.has_spare = r.u64() != 0;
  ckpt.adam.iterations = r.u64();
  ckpt.adam.beta1_pow = r.f64();
  ckpt.adam.beta2_pow = r.f64();
  ckpt.adam.m = read_matrices(r);
  ckpt.adam.v = read_matrices(r);
  ckpt.params = read_matrices(r);
  const std::uint64_t dealer_count = r.u64();
  if (dealer_count > r.remaining() / 4)
    throw std::runtime_error("train checkpoint: implausible dealer size");
  ckpt.sampler.indices.reserve(static_cast<std::size_t>(dealer_count));
  for (std::uint64_t i = 0; i < dealer_count; ++i)
    ckpt.sampler.indices.push_back(r.u32());
  ckpt.sampler.cursor = r.u64();
  ckpt.sampler.shuffled = r.u64() != 0;
  if (r.remaining() != 0)
    throw std::runtime_error("train checkpoint: trailing bytes after body");
  return ckpt;
}

}  // namespace

void save_train_checkpoint(const TrainCheckpoint& ckpt,
                           const std::string& path) {
  const std::string body = encode_body(ckpt);
  std::string bytes;
  bytes.reserve(body.size() + 24);
  bytes.append(kMagic, 8);
  put_u32(bytes, kFormatVersion);
  put_u64(bytes, body.size());
  bytes += body;
  put_u64(bytes, fnv1a64(body.data(), body.size()));
  util::write_file_durable(path, bytes);
}

TrainCheckpoint load_train_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("train checkpoint: cannot open '" + path + "'");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() < 28 || bytes.compare(0, 8, kMagic, 8) != 0)
    throw std::runtime_error("train checkpoint: bad magic in '" + path + "'");
  ByteReader head(bytes.data() + 8, bytes.size() - 8);
  const std::uint32_t version = head.u32();
  if (version != kFormatVersion)
    throw std::runtime_error("train checkpoint: unsupported format version " +
                             std::to_string(version));
  const std::uint64_t body_size = head.u64();
  if (head.remaining() != body_size + 8)
    throw std::runtime_error("train checkpoint: truncated '" + path + "'");
  const char* body = bytes.data() + 20;
  ByteReader tail(body + body_size, 8);
  const std::uint64_t stored = tail.u64();
  const std::uint64_t actual = fnv1a64(body, body_size);
  if (stored != actual)
    throw std::runtime_error("train checkpoint: checksum mismatch in '" +
                             path + "'");
  ByteReader r(body, static_cast<std::size_t>(body_size));
  return decode_body(r);
}

}  // namespace sgm::pinn
