#pragma once
// Shared validation/reporting helpers used by problems, examples and the
// bench harnesses.

#include <string>
#include <vector>

#include "pinn/pde.hpp"
#include "tensor/matrix.hpp"

namespace sgm::pinn {

/// ||a - b||_2 / ||b||_2 over aligned vectors (returns ||a||-based value
/// when b is all zeros, guarding the division).
double relative_l2(const std::vector<double>& a, const std::vector<double>& b);

/// Pretty single-line rendering, e.g. "u=0.0123 v=0.0456 p=0.1".
std::string format_validation(const std::vector<ValidationEntry>& entries);

/// Finds a metric's error in a validation set (inf when absent).
double validation_error(const std::vector<ValidationEntry>& entries,
                        const std::string& name);

/// Renders an (z, r, value) triplet field (as produced by
/// AnnularProblem::pressure_error_field) into a coarse ASCII heat map for
/// terminal inspection — the textual stand-in for Fig. 4's color plots.
std::string ascii_heatmap(const tensor::Matrix& field, std::size_t nz,
                          std::size_t nr);

}  // namespace sgm::pinn
