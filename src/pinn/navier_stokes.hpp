#pragma once
// Steady incompressible Navier–Stokes residuals on the tape, and the
// lid-driven-cavity (LDC) problem of Section 4.1 — the paper's primary
// non-parameterized benchmark.
//
// Network outputs: column 0 = u, 1 = v, 2 = p (kinematic pressure, rho=1).
// Residuals (plus optional zero-equation eddy viscosity nu_t):
//   continuity: u_x + v_y
//   momentum-x: u u_x + v u_y + p_x - (nu + nu_t)(u_xx + u_yy)
//   momentum-y: u v_x + v v_y + p_y - (nu + nu_t)(v_xx + v_yy)
// (The molecular+eddy viscous term uses the simplified constant-nu form
// Modulus' LDC example uses; the variable-nu_t transport correction is
// second order in the mixing-length model and omitted, as there.)

#include <memory>

#include "cfd/ldc_solver.hpp"
#include "nn/mlp.hpp"
#include "pinn/pde.hpp"
#include "pinn/zero_eq.hpp"

namespace sgm::pinn {

/// The three NS residual columns for a batch whose TapeOutputs carry first
/// and second derivatives w.r.t. input dims 0 (x) and 1 (y).
/// `nu_t` may be kNoVar for laminar flow.
struct NsResiduals {
  tensor::VarId continuity = tensor::kNoVar;
  tensor::VarId momentum_x = tensor::kNoVar;
  tensor::VarId momentum_y = tensor::kNoVar;
};
NsResiduals navier_stokes_residuals(tensor::Tape& tape,
                                    const nn::Mlp::TapeOutputs& out,
                                    double nu, tensor::VarId nu_t);

/// Lid-driven cavity with optional zero-equation turbulence.
class LdcProblem final : public PinnProblem {
 public:
  struct Options {
    double reynolds = 100.0;       ///< paper runs Re = 1000 (scaled here)
    double lid_velocity = 1.0;
    std::size_t interior_points = 16384;  ///< N (paper: 0.5M - 16M)
    std::size_t boundary_points = 2048;   ///< total over the four walls
    std::size_t boundary_batch = 128;
    double boundary_weight = 30.0;
    bool zero_equation = true;     ///< LDC_zeroEq vs laminar LDC
    ZeroEqOptions zero_eq{};
    /// Weight interior residuals by wall distance (Modulus' SDF weighting).
    bool sdf_weighting = true;
    std::uint64_t seed = 11;
  };

  /// `reference` supplies validation fields (the OpenFOAM substitute). May
  /// be null — validate() then returns empty.
  LdcProblem(const Options& options,
             std::shared_ptr<const cfd::LdcSolution> reference);

  std::string name() const override { return "ldc_zeroeq"; }
  const tensor::Matrix& interior_points() const override { return interior_; }
  std::size_t input_dim() const override { return 2; }
  std::size_t output_dim() const override { return 3; }

  tensor::VarId batch_loss(tensor::Tape& tape, const nn::Mlp& net,
                           const nn::Mlp::Binding& binding,
                           const std::vector<std::uint32_t>& rows,
                           util::Rng& rng) const override;

  std::vector<double> pointwise_residual(
      const nn::Mlp& net,
      const std::vector<std::uint32_t>& rows) const override;

  /// Validation errors: relative L2 of u and v against the reference FD
  /// fields on an interior grid, plus "nu" — the zero-equation nu_t
  /// compared against nu_t evaluated from the reference velocity field —
  /// mirroring the paper's (u, v, nu) columns in Table 1.
  std::vector<ValidationEntry> validate(const nn::Mlp& net) const override;

  const Options& options() const { return opt_; }

 private:
  struct BatchTerms {
    tensor::VarId loss = tensor::kNoVar;
    tensor::VarId residual_sq_per_point = tensor::kNoVar;  ///< n x 1
  };
  BatchTerms interior_terms(tensor::Tape& tape, const nn::Mlp& net,
                            const nn::Mlp::Binding& binding,
                            const tensor::Matrix& batch) const;

  Options opt_;
  double nu_ = 0.0;  ///< molecular viscosity = lid_velocity / Re
  tensor::Matrix interior_;        // N x 2
  tensor::Matrix wall_distance_;   // N x 1
  tensor::Matrix boundary_;        // Nb x 2
  tensor::Matrix boundary_uv_;     // Nb x 2 target (u, v)
  std::shared_ptr<const cfd::LdcSolution> reference_;
};

}  // namespace sgm::pinn
