#include "pinn/zero_eq.hpp"

#include <algorithm>
#include <cmath>

#include "pinn/loss.hpp"

namespace sgm::pinn {

using tensor::Matrix;
using tensor::Tape;
using tensor::VarId;

double mixing_length(double wall_distance, const ZeroEqOptions& options) {
  return std::min(options.karman * wall_distance,
                  options.max_distance_ratio * options.max_distance);
}

VarId zero_eq_nu_t(Tape& tape, const nn::Mlp::TapeOutputs& out,
                   std::size_t u_col, std::size_t v_col,
                   const Matrix& wall_distance, const ZeroEqOptions& options) {
  // First derivatives of u and v w.r.t. x (dy[0]) and y (dy[1]).
  const VarId ux = tensor::col(tape, out.dy[0], u_col);
  const VarId uy = tensor::col(tape, out.dy[1], u_col);
  const VarId vx = tensor::col(tape, out.dy[0], v_col);
  const VarId vy = tensor::col(tape, out.dy[1], v_col);

  // G = 2 (u_x^2 + v_y^2) + (u_y + v_x)^2
  const VarId g2 = tensor::scale(
      tape,
      tensor::add(tape, tensor::square(tape, ux), tensor::square(tape, vy)),
      2.0);
  const VarId shear = tensor::square(tape, tensor::add(tape, uy, vx));
  const VarId g = tensor::add(tape, g2, shear);

  // nu_t = rho * l_m^2 * sqrt(G); l_m^2 is a constant per batch row.
  const VarId sqrt_g = tensor::apply(tape, g, sqrt_eps(), 0);
  Matrix lm2(wall_distance.rows(), 1);
  for (std::size_t i = 0; i < wall_distance.rows(); ++i) {
    const double lm = mixing_length(wall_distance(i, 0), options);
    lm2(i, 0) = options.rho * lm * lm;
  }
  return tensor::mul(tape, tape.constant(std::move(lm2)), sqrt_g);
}

}  // namespace sgm::pinn
