#include "pinn/geometry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sgm::pinn {

using tensor::Matrix;

Matrix Geometry2D::sample_interior(std::size_t n, util::Rng& rng) const {
  const Aabb box = bounds();
  Matrix pts(n, 2);
  std::size_t got = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 1000 * std::max<std::size_t>(n, 1);
  while (got < n) {
    if (++attempts > max_attempts)
      throw std::runtime_error(
          "Geometry2D::sample_interior: rejection sampling failed (empty "
          "geometry?)");
    const double x = rng.uniform(box.xmin, box.xmax);
    const double y = rng.uniform(box.ymin, box.ymax);
    if (sdf(x, y) < 0.0) {
      pts(got, 0) = x;
      pts(got, 1) = y;
      ++got;
    }
  }
  return pts;
}

Rectangle::Rectangle(double xmin, double xmax, double ymin, double ymax)
    : box_{xmin, xmax, ymin, ymax} {
  if (xmax <= xmin || ymax <= ymin)
    throw std::invalid_argument("Rectangle: degenerate extents");
}

double Rectangle::sdf(double x, double y) const {
  // Exact rectangle SDF.
  const double cx = 0.5 * (box_.xmin + box_.xmax);
  const double cy = 0.5 * (box_.ymin + box_.ymax);
  const double dx = std::fabs(x - cx) - 0.5 * box_.width();
  const double dy = std::fabs(y - cy) - 0.5 * box_.height();
  const double ox = std::max(dx, 0.0), oy = std::max(dy, 0.0);
  const double outside = std::sqrt(ox * ox + oy * oy);
  const double inside = std::min(std::max(dx, dy), 0.0);
  return outside + inside;
}

Matrix Rectangle::sample_side(Side side, std::size_t n, util::Rng& rng) const {
  Matrix pts(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    // Stratified: one uniform draw per equal sub-interval.
    const double t = (static_cast<double>(i) + rng.uniform()) /
                     static_cast<double>(n);
    switch (side) {
      case Side::kBottom:
        pts(i, 0) = box_.xmin + t * box_.width();
        pts(i, 1) = box_.ymin;
        break;
      case Side::kTop:
        pts(i, 0) = box_.xmin + t * box_.width();
        pts(i, 1) = box_.ymax;
        break;
      case Side::kLeft:
        pts(i, 0) = box_.xmin;
        pts(i, 1) = box_.ymin + t * box_.height();
        break;
      case Side::kRight:
        pts(i, 0) = box_.xmax;
        pts(i, 1) = box_.ymin + t * box_.height();
        break;
    }
  }
  return pts;
}

Circle::Circle(double cx, double cy, double r) : cx_(cx), cy_(cy), r_(r) {
  if (r <= 0) throw std::invalid_argument("Circle: radius must be positive");
}

double Circle::sdf(double x, double y) const {
  const double dx = x - cx_, dy = y - cy_;
  return std::sqrt(dx * dx + dy * dy) - r_;
}

Aabb Circle::bounds() const {
  return {cx_ - r_, cx_ + r_, cy_ - r_, cy_ + r_};
}

Matrix Circle::sample_boundary(std::size_t n, util::Rng& rng) const {
  Matrix pts(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    const double theta = 2.0 * M_PI *
                         (static_cast<double>(i) + rng.uniform()) /
                         static_cast<double>(n);
    pts(i, 0) = cx_ + r_ * std::cos(theta);
    pts(i, 1) = cy_ + r_ * std::sin(theta);
  }
  return pts;
}

double Difference::sdf(double x, double y) const {
  return std::max(a_.sdf(x, y), -b_.sdf(x, y));
}

double unit_square_wall_distance(double x, double y) {
  return std::max(
      0.0, std::min(std::min(x, 1.0 - x), std::min(y, 1.0 - y)));
}

}  // namespace sgm::pinn
