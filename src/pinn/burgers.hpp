#pragma once
// 1-D viscous Burgers equation — the shock-forming scenario:
//
//   u_t + u u_x = nu u_xx   on (x, t) in [-1, 1] x [0, t_final],
//   u(x, 0) = -sin(pi x),   u(-1, t) = u(1, t) = 0.
//
// The solution steepens into a near-shock at x = 0 around t = 1/pi, so the
// PDE residual concentrates in a thin moving band — a natural importance-
// sampling workload. Validation is exact: the Cole–Hopf closed form in
// cfd/analytic.hpp, evaluated on a space-time grid at construction.
//
// Network inputs : (x, t);  network output: u.

#include "nn/mlp.hpp"
#include "pinn/pde.hpp"

namespace sgm::pinn {

class BurgersProblem final : public PinnProblem {
 public:
  struct Options {
    double nu = 0.02;            ///< viscosity (0.01/pi is the classic case)
    double t_final = 1.0;
    std::size_t interior_points = 4096;   ///< (x, t) collocation cloud
    std::size_t initial_points = 256;     ///< t = 0 line, u = -sin(pi x)
    std::size_t wall_points = 128;        ///< per wall x = +-1, u = 0
    std::size_t boundary_batch = 128;     ///< IC/BC rows per training step
    double boundary_weight = 10.0;
    /// Validation grid: nx equispaced x at nt equispaced times in
    /// (0, t_final].
    std::size_t validation_nx = 64;
    std::size_t validation_nt = 4;
    std::uint64_t seed = 29;
  };

  explicit BurgersProblem(const Options& options);

  std::string name() const override { return "burgers1d"; }
  const tensor::Matrix& interior_points() const override { return interior_; }
  std::size_t input_dim() const override { return 2; }
  std::size_t output_dim() const override { return 1; }

  tensor::VarId batch_loss(tensor::Tape& tape, const nn::Mlp& net,
                           const nn::Mlp::Binding& binding,
                           const std::vector<std::uint32_t>& rows,
                           util::Rng& rng) const override;

  std::vector<double> pointwise_residual(
      const nn::Mlp& net,
      const std::vector<std::uint32_t>& rows) const override;

  /// Relative L2 of u against the Cole–Hopf solution over the space-time
  /// validation grid.
  std::vector<ValidationEntry> validate(const nn::Mlp& net) const override;

  const Options& options() const { return opt_; }

 private:
  tensor::VarId residual_on_tape(tensor::Tape& tape, const nn::Mlp& net,
                                 const nn::Mlp::Binding& binding,
                                 const tensor::Matrix& batch) const;

  Options opt_;
  tensor::Matrix interior_;        // N x 2 (x, t)
  tensor::Matrix boundary_;        // Nb x 2 (IC line + both walls)
  tensor::Matrix boundary_value_;  // Nb x 1 target u
  tensor::Matrix validation_pts_;  // Nv x 2
  std::vector<double> validation_ref_;
};

}  // namespace sgm::pinn
