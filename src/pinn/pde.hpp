#pragma once
// The PinnProblem interface the trainer and samplers work against, plus the
// Poisson model problem used by the quickstart example and the tests.
//
// A problem owns its collocation point cloud and boundary data, knows how
// to build the training loss for a mini-batch on a tape, how to score the
// current per-point residual (the signal every importance sampler consumes)
// and how to measure validation error against reference data.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/mlp.hpp"
#include "tensor/tape.hpp"
#include "util/rng.hpp"

namespace sgm::pinn {

/// Named validation metric (relative L2 unless stated otherwise).
struct ValidationEntry {
  std::string name;
  double error = 0.0;
};

class PinnProblem {
 public:
  virtual ~PinnProblem() = default;

  virtual std::string name() const = 0;

  /// Collocation point cloud (N x input_dim) the samplers index into.
  virtual const tensor::Matrix& interior_points() const = 0;

  /// Network input/output widths this problem expects.
  virtual std::size_t input_dim() const = 0;
  virtual std::size_t output_dim() const = 0;

  /// Training loss for one step: PDE residuals on the selected interior
  /// rows plus the problem's boundary terms (the problem draws its own
  /// boundary mini-batch from `rng`). Scalar VarId on `tape`.
  virtual tensor::VarId batch_loss(tensor::Tape& tape, const nn::Mlp& net,
                                   const nn::Mlp::Binding& binding,
                                   const std::vector<std::uint32_t>& rows,
                                   util::Rng& rng) const = 0;

  /// Forward-only per-point PDE residual magnitude (sum over residual
  /// terms of w * r^2) at the given interior rows. Drives IS refreshes.
  virtual std::vector<double> pointwise_residual(
      const nn::Mlp& net, const std::vector<std::uint32_t>& rows) const = 0;

  /// Validation errors against the problem's reference solution.
  virtual std::vector<ValidationEntry> validate(const nn::Mlp& net) const = 0;
};

/// -nabla^2 u = f on the unit square with u = g on the boundary, where f
/// and g come from the manufactured solution in cfd/analytic.hpp. The
/// smallest end-to-end PINN; used by quickstart and the integration tests.
class PoissonProblem final : public PinnProblem {
 public:
  struct Options {
    std::size_t interior_points = 4096;
    std::size_t boundary_points = 512;   ///< total across the four walls
    std::size_t boundary_batch = 128;    ///< per training step
    double boundary_weight = 10.0;
    std::uint64_t seed = 7;
  };

  explicit PoissonProblem(const Options& options);

  std::string name() const override { return "poisson2d"; }
  const tensor::Matrix& interior_points() const override { return interior_; }
  std::size_t input_dim() const override { return 2; }
  std::size_t output_dim() const override { return 1; }

  tensor::VarId batch_loss(tensor::Tape& tape, const nn::Mlp& net,
                           const nn::Mlp::Binding& binding,
                           const std::vector<std::uint32_t>& rows,
                           util::Rng& rng) const override;

  std::vector<double> pointwise_residual(
      const nn::Mlp& net,
      const std::vector<std::uint32_t>& rows) const override;

  std::vector<ValidationEntry> validate(const nn::Mlp& net) const override;

 private:
  /// PDE residual column (u_xx + u_yy + f) for a batch already on a tape.
  tensor::VarId residual_on_tape(tensor::Tape& tape, const nn::Mlp& net,
                                 const nn::Mlp::Binding& binding,
                                 const tensor::Matrix& batch) const;

  Options opt_;
  tensor::Matrix interior_;       // N x 2
  tensor::Matrix interior_rhs_;   // N x 1 (f at each point)
  tensor::Matrix boundary_;       // Nb x 2
  tensor::Matrix boundary_value_; // Nb x 1 (g at each point)
};

}  // namespace sgm::pinn
