#include "pinn/helmholtz.hpp"

#include <cmath>

#include "cfd/analytic.hpp"
#include "pinn/geometry.hpp"
#include "pinn/loss.hpp"
#include "pinn/point_cloud.hpp"

namespace sgm::pinn {

using tensor::Matrix;
using tensor::Tape;
using tensor::VarId;

HelmholtzProblem::HelmholtzProblem(const Options& options) : opt_(options) {
  util::Rng rng(opt_.seed);
  Rectangle square(0, 1, 0, 1);
  interior_ = square.sample_interior(opt_.interior_points, rng);

  const std::size_t per_side = opt_.boundary_points / 4;
  boundary_ = Matrix(4 * per_side, 2);
  const Rectangle::Side sides[4] = {
      Rectangle::Side::kBottom, Rectangle::Side::kTop, Rectangle::Side::kLeft,
      Rectangle::Side::kRight};
  std::size_t row = 0;
  for (const auto side : sides) {
    Matrix pts = square.sample_side(side, per_side, rng);
    for (std::size_t i = 0; i < per_side; ++i, ++row) {
      boundary_(row, 0) = pts(i, 0);
      boundary_(row, 1) = pts(i, 1);
    }
  }
}

VarId HelmholtzProblem::residual_on_tape(Tape& tape, const nn::Mlp& net,
                                         const nn::Mlp::Binding& binding,
                                         const Matrix& batch) const {
  auto out = net.forward_on_tape(tape, binding, batch, /*n_deriv=*/2);
  Matrix q(batch.rows(), 1);
  for (std::size_t i = 0; i < batch.rows(); ++i)
    q(i, 0) = -cfd::helmholtz_manufactured_rhs(batch(i, 0), batch(i, 1),
                                               opt_.a1, opt_.a2,
                                               opt_.wavenumber);
  // residual = u_xx + u_yy + k^2 u - q.
  const VarId lap = tensor::add(tape, out.d2y[0], out.d2y[1]);
  const VarId k2u =
      tensor::scale(tape, out.y, opt_.wavenumber * opt_.wavenumber);
  return tensor::add(tape, tensor::add(tape, lap, k2u),
                     tape.constant(std::move(q)));
}

VarId HelmholtzProblem::batch_loss(Tape& tape, const nn::Mlp& net,
                                   const nn::Mlp::Binding& binding,
                                   const std::vector<std::uint32_t>& rows,
                                   util::Rng& rng) const {
  const Matrix batch = gather_rows(interior_, rows);
  const VarId residual = residual_on_tape(tape, net, binding, batch);

  const std::size_t nb =
      std::min<std::size_t>(opt_.boundary_batch, boundary_.rows());
  std::vector<std::uint32_t> brows(nb);
  for (auto& b : brows)
    b = static_cast<std::uint32_t>(rng.uniform_index(boundary_.rows()));
  const Matrix bpts = gather_rows(boundary_, brows);
  auto bout = net.forward_on_tape(tape, binding, bpts, /*n_deriv=*/0);
  // Homogeneous Dirichlet walls: u = 0.
  return combine(tape, {{"pde", mse(tape, residual), 1.0},
                        {"bc", mse(tape, bout.y), opt_.boundary_weight}});
}

std::vector<double> HelmholtzProblem::pointwise_residual(
    const nn::Mlp& net, const std::vector<std::uint32_t>& rows) const {
  Tape tape;
  const nn::Mlp::Binding binding = net.bind(tape);
  const Matrix batch = gather_rows(interior_, rows);
  const VarId residual = residual_on_tape(tape, net, binding, batch);
  const Matrix& r = tape.value(residual);
  std::vector<double> score(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) score[i] = r(i, 0) * r(i, 0);
  return score;
}

std::vector<ValidationEntry> HelmholtzProblem::validate(
    const nn::Mlp& net) const {
  const Matrix grid = make_grid(0.02, 0.98, 48, 0.02, 0.98, 48);
  const Matrix pred = net.forward(grid);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < grid.rows(); ++i) {
    const double ref = cfd::helmholtz_manufactured_solution(
        grid(i, 0), grid(i, 1), opt_.a1, opt_.a2);
    const double d = pred(i, 0) - ref;
    num += d * d;
    den += ref * ref;
  }
  return {{"u", std::sqrt(num / (den > 0 ? den : 1.0))}};
}

}  // namespace sgm::pinn
