#pragma once
// Durable training checkpoints: everything the Trainer needs to continue a
// run byte-identically after a crash — completed-iteration count, all
// parameter tensors, the full Adam state (moments + bias-correction powers
// + step counter), the RNG state and the telemetry accumulators.
//
// Format "SGMTRNC1": magic, u32 format version, little-endian body, FNV-1a64
// checksum trailer (same binio encoding and corruption posture as the model
// checkpoint v2 format — a flipped byte is a load error, not a silently
// wrong resume). Writes go through util::write_file_durable, so the path
// never names a partial checkpoint and a completed save survives power loss.
//
// Exactness caveat: the byte-identical-resume guarantee covers the state
// captured here, which includes the sampler's dealer position (epoch
// permutation + cursor) — resume is bit-exact mid-epoch for samplers whose
// batch stream is pure (dealer, rng), i.e. uniform. SGM samplers keep
// importance/refresh tables outside this snapshot, so their resume is
// best-effort: still a valid run, different trajectory.

#include <cstdint>
#include <string>
#include <vector>

#include "nn/optimizer.hpp"
#include "samplers/sampler.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace sgm::pinn {

struct TrainCheckpoint {
  std::uint64_t iteration = 0;  ///< iterations completed when captured
  double train_wall_s = 0.0;    ///< cumulative train wall clock
  double loss_accum = 0.0;      ///< mean-loss accumulator since last record
  std::uint64_t loss_count = 0;
  double lr_scale = 1.0;        ///< divergence-backoff multiplier
  util::RngState rng;
  nn::AdamState adam;
  std::vector<tensor::Matrix> params;  ///< net_.parameters() order
  /// Sampler dealer position; empty indices = sampler keeps no resumable
  /// state (restore skips it).
  samplers::DealerState sampler;
};

/// Crash-safe save (util::write_file_durable). Throws std::runtime_error on
/// any I/O failure.
void save_train_checkpoint(const TrainCheckpoint& ckpt,
                           const std::string& path);

/// Loads and checksum-verifies a checkpoint. Throws std::runtime_error on
/// missing/truncated/corrupt files.
TrainCheckpoint load_train_checkpoint(const std::string& path);

}  // namespace sgm::pinn
