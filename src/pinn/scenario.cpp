#include "pinn/scenario.hpp"

#include <stdexcept>
#include <utility>

#include "cfd/ldc_solver.hpp"
#include "nn/encoding.hpp"
#include "pinn/annular.hpp"
#include "pinn/burgers.hpp"
#include "pinn/helmholtz.hpp"
#include "pinn/navier_stokes.hpp"
#include "pinn/thermal.hpp"

namespace sgm::pinn {

namespace {

bool smoke(ScenarioScale scale) { return scale == ScenarioScale::kSmoke; }

/// Shared trainer defaults; scenarios override budget/cadence.
TrainerOptions base_trainer(std::uint64_t iterations,
                            std::uint64_t validate_every) {
  TrainerOptions opt;
  opt.batch_size = 96;
  opt.max_iterations = iterations;
  opt.learning_rate = 2e-3;
  opt.lr_gamma = 0.97;
  opt.lr_decay_steps = 1000;
  opt.validate_every = validate_every;
  opt.seed = 404;
  return opt;
}

/// Shared SGM defaults: one mid-run S1/S2 rebuild at the smoke budget so
/// the tier-2 harness exercises the (threaded) rebuild path end to end.
core::SgmOptions base_sgm(std::size_t k, int levels, std::uint64_t tau_e,
                          std::uint64_t tau_g) {
  core::SgmOptions opt;
  opt.pgm.knn.k = k;
  opt.lrd.levels = levels;
  opt.rep_fraction = 0.15;
  opt.tau_e = tau_e;
  opt.tau_g = tau_g;
  opt.epoch.epoch_fraction = 0.25;
  opt.seed = 2024;
  return opt;
}

ScenarioConfig make_poisson(ScenarioScale scale) {
  const bool s = smoke(scale);
  ScenarioConfig cfg;
  cfg.name = "poisson2d";
  cfg.description =
      "-lap u = f on the unit square, manufactured sin*sin solution";
  PoissonProblem::Options popt;
  popt.interior_points = s ? 2048 : 4096;
  popt.boundary_points = s ? 256 : 512;
  cfg.problem = std::make_shared<PoissonProblem>(popt);
  cfg.net.input_dim = 2;
  cfg.net.output_dim = 1;
  cfg.net.width = s ? 24 : 32;
  cfg.net.depth = 3;
  cfg.trainer = base_trainer(s ? 600 : 2000, s ? 150 : 250);
  cfg.sgm = base_sgm(8, 5, /*tau_e=*/150, /*tau_g=*/300);
  cfg.envelopes = {{"u", 0.30}};
  return cfg;
}

ScenarioConfig make_ldc(ScenarioScale scale) {
  const bool s = smoke(scale);
  ScenarioConfig cfg;
  cfg.name = "ldc_zeroeq";
  cfg.description =
      "lid-driven cavity with zero-equation turbulence vs the FD reference";
  cfd::LdcOptions ref_opt;
  ref_opt.n = s ? 41 : 81;
  ref_opt.reynolds = 10.0;
  auto reference = std::make_shared<const cfd::LdcSolution>(
      cfd::solve_lid_driven_cavity(ref_opt));
  LdcProblem::Options popt;
  popt.reynolds = 10.0;
  popt.interior_points = s ? 1024 : 16384;
  popt.boundary_points = s ? 256 : 2048;
  popt.zero_equation = true;
  cfg.problem = std::make_shared<LdcProblem>(popt, std::move(reference));
  cfg.net.input_dim = 2;
  cfg.net.output_dim = 3;  // (u, v, p)
  cfg.net.width = s ? 24 : 48;
  cfg.net.depth = s ? 3 : 4;
  if (!s) {
    util::Rng enc_rng(4242);
    cfg.net.encoding =
        std::make_shared<nn::FourierEncoding>(2, 12, 1.5, enc_rng);
  }
  cfg.trainer = base_trainer(s ? 2000 : 20000, 500);
  cfg.trainer.batch_size = s ? 64 : 128;
  cfg.sgm = base_sgm(s ? 10 : 20, s ? 6 : 10, /*tau_e=*/250, /*tau_g=*/900);
  cfg.sgm.epoch.epoch_fraction = 0.125;
  cfg.envelopes = {{"u", 0.90}, {"nu", 0.70}};
  return cfg;
}

ScenarioConfig make_annular(ScenarioScale scale) {
  const bool s = smoke(scale);
  ScenarioConfig cfg;
  cfg.name = "annular_ring_param";
  cfg.description =
      "parameterized annular Poiseuille flow (r_i as a network input), "
      "exact reference";
  AnnularProblem::Options popt;
  popt.interior_points = s ? 1024 : 16384;
  popt.boundary_points = s ? 256 : 2048;
  cfg.problem = std::make_shared<AnnularProblem>(popt);
  cfg.net.input_dim = 3;   // (z, r, r_i)
  cfg.net.output_dim = 3;  // (u, v, p)
  cfg.net.width = s ? 24 : 48;
  cfg.net.depth = s ? 3 : 4;
  if (!s) {
    util::Rng enc_rng(4242);
    cfg.net.encoding =
        std::make_shared<nn::FourierEncoding>(3, 12, 1.0, enc_rng);
  }
  cfg.trainer = base_trainer(s ? 2000 : 20000, 500);
  cfg.trainer.batch_size = s ? 64 : 128;
  cfg.sgm = base_sgm(7, 6, /*tau_e=*/250, /*tau_g=*/900);
  cfg.sgm.use_isr = true;  // the paper pairs S3 with parameterized training
  cfg.sgm.isr.rank = 4;
  cfg.sgm.isr.subspace_iterations = 3;
  cfg.envelopes = {{"u", 0.25}, {"v", 0.05}, {"p", 0.08}};
  return cfg;
}

ScenarioConfig make_chip_thermal(ScenarioScale scale) {
  const bool s = smoke(scale);
  ScenarioConfig cfg;
  cfg.name = "chip_thermal";
  cfg.description =
      "steady die temperature under a power-block floorplan vs FDM";
  ChipThermalProblem::Options popt;
  popt.interior_points = s ? 2048 : 8192;
  popt.boundary_points = s ? 256 : 1024;
  popt.reference_grid = s ? 65 : 129;
  cfg.problem = std::make_shared<ChipThermalProblem>(popt);
  cfg.net.input_dim = 2;
  cfg.net.output_dim = 1;
  cfg.net.width = s ? 24 : 40;
  cfg.net.depth = 3;
  cfg.trainer = base_trainer(s ? 500 : 10000, s ? 125 : 400);
  cfg.sgm = base_sgm(10, 8, /*tau_e=*/125, /*tau_g=*/250);
  cfg.sgm.epoch.epoch_fraction = 0.5;
  cfg.sgm.epoch.ratio_max = 2.5;
  cfg.envelopes = {{"T", 0.65}, {"T_peak_abs", 0.80}};
  return cfg;
}

ScenarioConfig make_burgers(ScenarioScale scale) {
  const bool s = smoke(scale);
  ScenarioConfig cfg;
  cfg.name = "burgers1d";
  cfg.description =
      "1-D viscous Burgers (shock-forming), Cole-Hopf exact reference";
  BurgersProblem::Options popt;
  popt.interior_points = s ? 2048 : 8192;
  popt.initial_points = s ? 192 : 512;
  popt.wall_points = s ? 64 : 192;
  cfg.problem = std::make_shared<BurgersProblem>(popt);
  cfg.net.input_dim = 2;  // (x, t)
  cfg.net.output_dim = 1;
  cfg.net.width = s ? 24 : 32;
  cfg.net.depth = 3;
  cfg.trainer = base_trainer(s ? 600 : 6000, s ? 150 : 300);
  cfg.sgm = base_sgm(8, 5, /*tau_e=*/150, /*tau_g=*/300);
  cfg.envelopes = {{"u", 0.70}};
  return cfg;
}

ScenarioConfig make_helmholtz(ScenarioScale scale) {
  const bool s = smoke(scale);
  ScenarioConfig cfg;
  cfg.name = "helmholtz2d";
  cfg.description =
      "2-D Helmholtz with an oscillatory manufactured mode (1, 4)";
  HelmholtzProblem::Options popt;
  popt.interior_points = s ? 2048 : 8192;
  popt.boundary_points = s ? 256 : 1024;
  cfg.problem = std::make_shared<HelmholtzProblem>(popt);
  cfg.net.input_dim = 2;
  cfg.net.output_dim = 1;
  cfg.net.width = s ? 24 : 40;
  cfg.net.depth = 3;
  // The (1, 4) mode is out of reach of a plain small MLP within the smoke
  // budget; Fourier features are part of the recommended configuration.
  util::Rng enc_rng(777);
  cfg.net.encoding = std::make_shared<nn::FourierEncoding>(2, 8, 2.0, enc_rng);
  cfg.trainer = base_trainer(s ? 600 : 6000, s ? 150 : 300);
  cfg.sgm = base_sgm(8, 5, /*tau_e=*/150, /*tau_g=*/300);
  cfg.envelopes = {{"u", 0.90}};
  return cfg;
}

}  // namespace

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    r->add("poisson2d", make_poisson);
    r->add("ldc_zeroeq", make_ldc);
    r->add("annular_ring_param", make_annular);
    r->add("chip_thermal", make_chip_thermal);
    r->add("burgers1d", make_burgers);
    r->add("helmholtz2d", make_helmholtz);
    return r;
  }();
  return *registry;
}

void ScenarioRegistry::add(const std::string& name, ScenarioFactory factory) {
  if (!factory)
    throw std::invalid_argument("ScenarioRegistry: null factory for " + name);
  if (!factories_.emplace(name, std::move(factory)).second)
    throw std::invalid_argument("ScenarioRegistry: duplicate scenario " +
                                name);
}

bool ScenarioRegistry::contains(const std::string& name) const {
  return factories_.count(name) != 0;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

ScenarioConfig ScenarioRegistry::make(const std::string& name,
                                      ScenarioScale scale) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& n : names()) known += (known.empty() ? "" : ", ") + n;
    throw std::out_of_range("ScenarioRegistry: unknown scenario '" + name +
                            "' (registered: " + known + ")");
  }
  ScenarioConfig cfg = it->second(scale);
  if (!cfg.sgm_incremental.incremental_refresh) {
    // Derive the incremental-refresh variant from the recommended SGM
    // options (factories that set their own variant are left alone):
    // output-weighted rebuilds feed the drift signal, a 5%-of-feature-scale
    // tolerance filters training noise, and the default fallback threshold
    // keeps early-training refreshes (where everything drifts) full.
    cfg.sgm_incremental = cfg.sgm;
    cfg.sgm_incremental.incremental_refresh = true;
    if (cfg.sgm_incremental.rebuild_output_weight <= 0.0)
      cfg.sgm_incremental.rebuild_output_weight = 0.5;
    cfg.sgm_incremental.dirty_tolerance = 0.05;
    cfg.sgm_incremental.incremental_threshold = 0.35;
    cfg.sgm_incremental.er_stale_ratio = 0.25;
  }
  return cfg;
}

}  // namespace sgm::pinn
