#pragma once
// Scenario registry — the catalogue of end-to-end PINN workloads.
//
// A *scenario* bundles everything needed to train and judge one problem:
// the PinnProblem instance, a recommended network, recommended trainer and
// SGM-sampler options, and per-metric convergence envelopes. Scenarios are
// constructed through a factory registry keyed by name, so examples, benches
// and the tier-2 regression harness all iterate the same catalogue — adding
// a problem here automatically adds it to `run_scenario`, `bench_scenarios`
// and `ctest -L tier2`.
//
// Two scales per scenario:
//  * kSmoke — small clouds / short budgets sized for the tier-2 ctest
//             harness; the envelopes are calibrated at this scale and must
//             hold under BOTH uniform and SGM sampling;
//  * kFull  — the example/bench scale (the sizes the per-problem examples
//             used to hard-code).
//
// Registering a new scenario:
//   ScenarioRegistry::instance().add("my_problem", [](ScenarioScale s) {
//     ScenarioConfig cfg; ... return cfg; });
// Names must be unique; the built-in six are registered on first access.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sgm_sampler.hpp"
#include "nn/mlp.hpp"
#include "pinn/pde.hpp"
#include "pinn/trainer.hpp"

namespace sgm::pinn {

/// Convergence bound: best_error(metric) <= max_error after the scenario's
/// recommended smoke budget (under uniform AND SGM sampling).
struct MetricEnvelope {
  std::string metric;
  double max_error = 0.0;
};

enum class ScenarioScale { kSmoke, kFull };

struct ScenarioConfig {
  std::string name;
  std::string description;
  std::shared_ptr<PinnProblem> problem;
  nn::MlpConfig net;                 ///< recommended network (with encoding)
  std::uint64_t net_seed = 7;        ///< weight-init seed
  TrainerOptions trainer;            ///< recommended loop options
  core::SgmOptions sgm;              ///< recommended SGM sampler options
  /// Recommended incremental-refresh variant of `sgm`: same pipeline with
  /// the IncrementalRefreshEngine on, output-weighted rebuilds (the drift
  /// signal the dirty tracker watches) and calibrated dirty/threshold
  /// knobs. ScenarioRegistry::make derives it from `sgm` when the factory
  /// leaves it untouched; factories may override. Needs an outputs
  /// provider wired (SgmSampler::set_outputs_provider) to be meaningful.
  core::SgmOptions sgm_incremental;
  std::vector<MetricEnvelope> envelopes;  ///< calibrated at kSmoke
};

using ScenarioFactory = std::function<ScenarioConfig(ScenarioScale)>;

class ScenarioRegistry {
 public:
  /// The process-wide registry with the built-in scenarios pre-registered.
  static ScenarioRegistry& instance();

  /// Registers a factory under `name`; throws std::invalid_argument on a
  /// duplicate name.
  void add(const std::string& name, ScenarioFactory factory);

  bool contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  /// Constructs the scenario; throws std::out_of_range for unknown names
  /// (the message lists what is registered).
  ScenarioConfig make(const std::string& name, ScenarioScale scale) const;

 private:
  std::map<std::string, ScenarioFactory> factories_;
};

}  // namespace sgm::pinn
