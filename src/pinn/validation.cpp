#include "pinn/validation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace sgm::pinn {

double relative_l2(const std::vector<double>& a,
                   const std::vector<double>& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("relative_l2: size mismatch");
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    num += d * d;
    den += b[i] * b[i];
  }
  return std::sqrt(num / (den > 0.0 ? den : 1.0));
}

std::string format_validation(const std::vector<ValidationEntry>& entries) {
  std::ostringstream out;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i) out << ' ';
    out << entries[i].name << '=' << util::format_double(entries[i].error);
  }
  return out.str();
}

double validation_error(const std::vector<ValidationEntry>& entries,
                        const std::string& name) {
  for (const auto& e : entries)
    if (e.name == name) return e.error;
  return std::numeric_limits<double>::infinity();
}

std::string ascii_heatmap(const tensor::Matrix& field, std::size_t nz,
                          std::size_t nr) {
  if (field.rows() != nz * nr || field.cols() < 3)
    throw std::invalid_argument("ascii_heatmap: field shape mismatch");
  double lo = field(0, 2), hi = field(0, 2);
  for (std::size_t i = 0; i < field.rows(); ++i) {
    lo = std::min(lo, field(i, 2));
    hi = std::max(hi, field(i, 2));
  }
  const double span = hi > lo ? hi - lo : 1.0;
  static const char ramp[] = " .:-=+*#%@";
  std::ostringstream out;
  out << "min=" << util::format_double(lo) << " max=" << util::format_double(hi)
      << " (rows: r descending; cols: z increasing)\n";
  for (std::size_t ir = nr; ir-- > 0;) {
    for (std::size_t iz = 0; iz < nz; ++iz) {
      const double v = field(iz * nr + ir, 2);
      const int level = static_cast<int>((v - lo) / span * 9.0);
      out << ramp[std::clamp(level, 0, 9)];
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace sgm::pinn
