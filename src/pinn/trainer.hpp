#pragma once
// The sampler-agnostic training loop. All experiment arms (uniform / MIS /
// SGM / SGM-S) share this trainer; only the injected Sampler differs, which
// is the paper's controlled variable.
//
// Telemetry rules (what the tables/figures are computed from):
//  * "train wall time" includes forward/backward/optimizer AND all sampler
//    refresh work (the overhead the paper trades against) — but excludes
//    validation, which exists only for measurement;
//  * validation errors are recorded every `validate_every` iterations,
//    giving the error-vs-time curves of Figs. 2-3 and the minima /
//    time-to-reach entries of Tables 1-2.
//
// Robustness (opt-in via TrainerOptions, off by default so paper runs are
// untouched):
//  * divergence sentinel — every step's loss and gradients are checked for
//    non-finite values BEFORE the optimizer applies them, so a blow-up
//    never poisons the parameters. On divergence the trainer rolls back to
//    the last periodic in-memory snapshot (params + Adam state + RNG +
//    telemetry accumulators), halves the learning rate (divergence_lr_
//    backoff) and retries; retries are bounded per snapshot interval
//    (max_divergence_retries), after which it throws. The `trainer.diverge`
//    failpoint injects a divergence for the chaos tests.
//  * durable checkpoints — checkpoint_path + checkpoint_every write a
//    crash-safe train checkpoint (pinn/train_checkpoint.*); `resume` picks
//    the run back up from it. The snapshot carries everything the loop
//    reads — params, Adam, RNG, accumulators AND the sampler's dealer
//    position — so resume is byte-identical (even mid-epoch) for samplers
//    whose batch stream is pure (dealer, rng), i.e. uniform. SGM samplers
//    rebuild their refresh tables and continue as a valid but not
//    bit-equal run.

#include <limits>
#include <string>
#include <vector>

#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "pinn/pde.hpp"
#include "samplers/sampler.hpp"

namespace sgm::pinn {

struct TrainerOptions {
  std::size_t batch_size = 512;
  std::uint64_t max_iterations = 2000;
  double wall_time_budget_s = 0.0;  ///< stop early when > 0 and exceeded
  double learning_rate = 1e-3;
  double lr_gamma = 0.97;           ///< exponential decay factor
  std::uint64_t lr_decay_steps = 1000;
  std::uint64_t validate_every = 200;
  std::string telemetry_csv;        ///< optional CSV path ("" = off)
  std::uint64_t seed = 1;
  /// Worker threads for the forward/backward tape kernels (the training
  /// step itself, not the sampler rebuilds — those are SgmOptions::
  /// num_threads). 0 = SGM_NUM_THREADS env or hardware concurrency.
  /// Histories are byte-identical at any setting.
  std::size_t num_threads = 0;

  // --- robustness / recovery (all off by default) --------------------------
  /// Take an in-memory rollback snapshot every N completed iterations
  /// (0 = off). With snapshots off, a detected divergence throws instead of
  /// rolling back.
  std::uint64_t snapshot_every = 0;
  /// Divergences tolerated per snapshot interval before giving up.
  std::size_t max_divergence_retries = 3;
  /// Learning-rate multiplier applied on every rollback (compounds).
  double divergence_lr_backoff = 0.5;
  /// Durable train checkpoint file ("" = off); written every
  /// checkpoint_every completed iterations and at the final iteration.
  std::string checkpoint_path;
  std::uint64_t checkpoint_every = 0;
  /// Resume from checkpoint_path if the file exists (fresh start with a
  /// warning when it does not).
  bool resume = false;
};

struct TrainRecord {
  std::uint64_t iteration = 0;
  double train_wall_s = 0.0;  ///< cumulative, validation excluded
  double mean_loss = 0.0;     ///< mean batch loss since previous record
  std::vector<ValidationEntry> validation;
};

struct TrainHistory {
  std::vector<TrainRecord> records;
  double total_train_wall_s = 0.0;
  double sampler_refresh_s = 0.0;
  std::uint64_t sampler_loss_evaluations = 0;
  std::string sampler_name;
  /// Divergence-sentinel rollbacks taken (0 on a healthy run).
  std::uint64_t divergence_rollbacks = 0;
  /// Iteration the run resumed from (0 = fresh start).
  std::uint64_t resumed_from_iteration = 0;

  /// Minimum validation error observed for a metric (inf when absent).
  double best_error(const std::string& metric) const;

  /// Train wall time of the first record whose `metric` error is <=
  /// `threshold` (inf when never reached) — the T(M_j) entries of the
  /// paper's tables.
  double time_to_reach(const std::string& metric, double threshold) const;
};

class Trainer {
 public:
  Trainer(const PinnProblem& problem, nn::Mlp& net,
          samplers::Sampler& sampler, const TrainerOptions& options);

  /// Runs the full loop and returns the telemetry history.
  TrainHistory run();

 private:
  const PinnProblem& problem_;
  nn::Mlp& net_;
  samplers::Sampler& sampler_;
  TrainerOptions opt_;
};

}  // namespace sgm::pinn
