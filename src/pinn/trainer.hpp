#pragma once
// The sampler-agnostic training loop. All experiment arms (uniform / MIS /
// SGM / SGM-S) share this trainer; only the injected Sampler differs, which
// is the paper's controlled variable.
//
// Telemetry rules (what the tables/figures are computed from):
//  * "train wall time" includes forward/backward/optimizer AND all sampler
//    refresh work (the overhead the paper trades against) — but excludes
//    validation, which exists only for measurement;
//  * validation errors are recorded every `validate_every` iterations,
//    giving the error-vs-time curves of Figs. 2-3 and the minima /
//    time-to-reach entries of Tables 1-2.

#include <limits>
#include <string>
#include <vector>

#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "pinn/pde.hpp"
#include "samplers/sampler.hpp"

namespace sgm::pinn {

struct TrainerOptions {
  std::size_t batch_size = 512;
  std::uint64_t max_iterations = 2000;
  double wall_time_budget_s = 0.0;  ///< stop early when > 0 and exceeded
  double learning_rate = 1e-3;
  double lr_gamma = 0.97;           ///< exponential decay factor
  std::uint64_t lr_decay_steps = 1000;
  std::uint64_t validate_every = 200;
  std::string telemetry_csv;        ///< optional CSV path ("" = off)
  std::uint64_t seed = 1;
  /// Worker threads for the forward/backward tape kernels (the training
  /// step itself, not the sampler rebuilds — those are SgmOptions::
  /// num_threads). 0 = SGM_NUM_THREADS env or hardware concurrency.
  /// Histories are byte-identical at any setting.
  std::size_t num_threads = 0;
};

struct TrainRecord {
  std::uint64_t iteration = 0;
  double train_wall_s = 0.0;  ///< cumulative, validation excluded
  double mean_loss = 0.0;     ///< mean batch loss since previous record
  std::vector<ValidationEntry> validation;
};

struct TrainHistory {
  std::vector<TrainRecord> records;
  double total_train_wall_s = 0.0;
  double sampler_refresh_s = 0.0;
  std::uint64_t sampler_loss_evaluations = 0;
  std::string sampler_name;

  /// Minimum validation error observed for a metric (inf when absent).
  double best_error(const std::string& metric) const;

  /// Train wall time of the first record whose `metric` error is <=
  /// `threshold` (inf when never reached) — the T(M_j) entries of the
  /// paper's tables.
  double time_to_reach(const std::string& metric, double threshold) const;
};

class Trainer {
 public:
  Trainer(const PinnProblem& problem, nn::Mlp& net,
          samplers::Sampler& sampler, const TrainerOptions& options);

  /// Runs the full loop and returns the telemetry history.
  TrainHistory run();

 private:
  const PinnProblem& problem_;
  nn::Mlp& net_;
  samplers::Sampler& sampler_;
  TrainerOptions opt_;
};

}  // namespace sgm::pinn
