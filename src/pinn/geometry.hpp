#pragma once
// 2-D geometry primitives for collocation-point generation: signed distance
// functions, rejection sampling of interiors and uniform sampling of
// boundary segments. These mirror the constructive-geometry layer of
// Modulus Sym at the scale this repo needs.

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace sgm::pinn {

struct Aabb {
  double xmin = 0, xmax = 1, ymin = 0, ymax = 1;
  double width() const { return xmax - xmin; }
  double height() const { return ymax - ymin; }
};

class Geometry2D {
 public:
  virtual ~Geometry2D() = default;

  /// Signed distance: negative inside, positive outside, 0 on the boundary.
  virtual double sdf(double x, double y) const = 0;

  virtual Aabb bounds() const = 0;

  bool inside(double x, double y) const { return sdf(x, y) <= 0.0; }

  /// `n` interior points by rejection sampling within bounds().
  tensor::Matrix sample_interior(std::size_t n, util::Rng& rng) const;
};

/// Axis-aligned rectangle.
class Rectangle final : public Geometry2D {
 public:
  Rectangle(double xmin, double xmax, double ymin, double ymax);

  double sdf(double x, double y) const override;
  Aabb bounds() const override { return box_; }

  enum class Side { kBottom, kTop, kLeft, kRight };
  /// `n` uniformly spaced points along one side (endpoints inset half a
  /// step so corners are not double-counted between walls).
  tensor::Matrix sample_side(Side side, std::size_t n, util::Rng& rng) const;

 private:
  Aabb box_;
};

/// Circle (disk) of radius r at (cx, cy).
class Circle final : public Geometry2D {
 public:
  Circle(double cx, double cy, double r);
  double sdf(double x, double y) const override;
  Aabb bounds() const override;

  /// `n` points uniform in angle on the circle.
  tensor::Matrix sample_boundary(std::size_t n, util::Rng& rng) const;

 private:
  double cx_, cy_, r_;
};

/// Constructive difference a \ b (e.g. channel minus ring).
class Difference final : public Geometry2D {
 public:
  Difference(const Geometry2D& a, const Geometry2D& b) : a_(a), b_(b) {}
  double sdf(double x, double y) const override;
  Aabb bounds() const override { return a_.bounds(); }

 private:
  const Geometry2D& a_;
  const Geometry2D& b_;
};

/// Distance to the nearest wall of the unit square (the LDC mixing-length /
/// SDF loss weight).
double unit_square_wall_distance(double x, double y);

}  // namespace sgm::pinn
