#include "pinn/annular.hpp"

#include <cmath>

#include "pinn/loss.hpp"
#include "pinn/point_cloud.hpp"

namespace sgm::pinn {

using tensor::Matrix;
using tensor::Tape;
using tensor::VarId;

AnnularProblem::AnnularProblem(const Options& options) : opt_(options) {
  util::Rng rng(opt_.seed);

  // Interior cloud: each point carries its own geometry parameter r_i.
  interior_ = Matrix(opt_.interior_points, 3);
  for (std::size_t i = 0; i < opt_.interior_points; ++i) {
    const double ri = rng.uniform(opt_.r_inner_min, opt_.r_inner_max);
    interior_(i, 0) = rng.uniform(0.0, opt_.length);
    interior_(i, 1) = rng.uniform(ri, opt_.r_outer);
    interior_(i, 2) = ri;
  }

  // Boundary cloud: four groups — inner wall, outer wall, inlet, outlet.
  const std::size_t per_group = opt_.boundary_points / 4;
  boundary_ = Matrix(4 * per_group, 3);
  boundary_tgt_ = Matrix(4 * per_group, 4);
  std::size_t row = 0;
  const double p_in = opt_.pressure_gradient * opt_.length;
  for (int group = 0; group < 4; ++group) {
    for (std::size_t i = 0; i < per_group; ++i, ++row) {
      const double ri = rng.uniform(opt_.r_inner_min, opt_.r_inner_max);
      double z = 0, r = 0, tu = 0, tv = 0, tp = 0, mask = 1;
      switch (group) {
        case 0:  // inner wall: no-slip
          z = rng.uniform(0.0, opt_.length);
          r = ri;
          break;
        case 1:  // outer wall: no-slip
          z = rng.uniform(0.0, opt_.length);
          r = opt_.r_outer;
          break;
        case 2:  // inlet: p = g L, v = 0
          z = 0.0;
          r = rng.uniform(ri, opt_.r_outer);
          tp = p_in;
          mask = 0;
          break;
        case 3:  // outlet: p = 0, v = 0
          z = opt_.length;
          r = rng.uniform(ri, opt_.r_outer);
          tp = 0.0;
          mask = 0;
          break;
      }
      boundary_(row, 0) = z;
      boundary_(row, 1) = r;
      boundary_(row, 2) = ri;
      boundary_tgt_(row, 0) = tu;
      boundary_tgt_(row, 1) = tv;
      boundary_tgt_(row, 2) = tp;
      boundary_tgt_(row, 3) = mask;
    }
  }
}

cfd::AnnularPoiseuille AnnularProblem::reference(double r_inner) const {
  cfd::AnnularPoiseuille ref;
  ref.r_inner = r_inner;
  ref.r_outer = opt_.r_outer;
  ref.pressure_gradient = opt_.pressure_gradient;
  ref.nu = opt_.nu;
  return ref;
}

VarId AnnularProblem::residual_sq_on_tape(Tape& tape, const nn::Mlp& net,
                                          const nn::Mlp::Binding& binding,
                                          const Matrix& batch) const {
  // Derivatives w.r.t. dims 0 (z) and 1 (r); dim 2 (r_i) is a parameter.
  auto out = net.forward_on_tape(tape, binding, batch, /*n_deriv=*/2);

  const VarId u = tensor::col(tape, out.y, 0);
  const VarId v = tensor::col(tape, out.y, 1);
  const VarId uz = tensor::col(tape, out.dy[0], 0);
  const VarId ur = tensor::col(tape, out.dy[1], 0);
  const VarId vz = tensor::col(tape, out.dy[0], 1);
  const VarId vr = tensor::col(tape, out.dy[1], 1);
  const VarId pz = tensor::col(tape, out.dy[0], 2);
  const VarId pr = tensor::col(tape, out.dy[1], 2);
  const VarId uzz = tensor::col(tape, out.d2y[0], 0);
  const VarId urr = tensor::col(tape, out.d2y[1], 0);
  const VarId vzz = tensor::col(tape, out.d2y[0], 1);
  const VarId vrr = tensor::col(tape, out.d2y[1], 1);

  // Constant per-point 1/r and 1/r^2 columns.
  Matrix inv_r(batch.rows(), 1), inv_r2(batch.rows(), 1);
  for (std::size_t i = 0; i < batch.rows(); ++i) {
    const double r = std::max(batch(i, 1), 1e-9);
    inv_r(i, 0) = 1.0 / r;
    inv_r2(i, 0) = 1.0 / (r * r);
  }
  const VarId c_inv_r = tape.constant(std::move(inv_r));
  const VarId c_inv_r2 = tape.constant(std::move(inv_r2));

  // continuity: u_z + v_r + v / r
  const VarId cont = tensor::add(
      tape, tensor::add(tape, uz, vr), tensor::mul(tape, v, c_inv_r));

  // momentum-z: u u_z + v u_r + p_z - nu (u_zz + u_rr + u_r / r)
  const VarId conv_u = tensor::add(tape, tensor::mul(tape, u, uz),
                                   tensor::mul(tape, v, ur));
  const VarId lap_u = tensor::add(tape, tensor::add(tape, uzz, urr),
                                  tensor::mul(tape, ur, c_inv_r));
  const VarId mom_z = tensor::sub(tape, tensor::add(tape, conv_u, pz),
                                  tensor::scale(tape, lap_u, opt_.nu));

  // momentum-r: u v_z + v v_r + p_r - nu (v_zz + v_rr + v_r / r - v / r^2)
  const VarId conv_v = tensor::add(tape, tensor::mul(tape, u, vz),
                                   tensor::mul(tape, v, vr));
  const VarId lap_v = tensor::sub(
      tape,
      tensor::add(tape, tensor::add(tape, vzz, vrr),
                  tensor::mul(tape, vr, c_inv_r)),
      tensor::mul(tape, v, c_inv_r2));
  const VarId mom_r = tensor::sub(tape, tensor::add(tape, conv_v, pr),
                                  tensor::scale(tape, lap_v, opt_.nu));

  return tensor::add(tape, tensor::square(tape, cont),
                     tensor::add(tape, tensor::square(tape, mom_z),
                                 tensor::square(tape, mom_r)));
}

VarId AnnularProblem::batch_loss(Tape& tape, const nn::Mlp& net,
                                 const nn::Mlp::Binding& binding,
                                 const std::vector<std::uint32_t>& rows,
                                 util::Rng& rng) const {
  const Matrix batch = gather_rows(interior_, rows);
  const VarId res_sq = residual_sq_on_tape(tape, net, binding, batch);
  const VarId pde_loss = tensor::mean_all(tape, res_sq);

  // Boundary mini-batch: velocity conditions on walls, pressure + v at the
  // inlet/outlet. `mask` selects which target applies per point.
  const std::size_t nb =
      std::min<std::size_t>(opt_.boundary_batch, boundary_.rows());
  std::vector<std::uint32_t> brows(nb);
  for (auto& b : brows)
    b = static_cast<std::uint32_t>(rng.uniform_index(boundary_.rows()));
  const Matrix bpts = gather_rows(boundary_, brows);
  Matrix tu(nb, 1), tv(nb, 1), tp(nb, 1), mask_uv(nb, 1), mask_p(nb, 1);
  for (std::size_t i = 0; i < nb; ++i) {
    tu(i, 0) = boundary_tgt_(brows[i], 0);
    tv(i, 0) = boundary_tgt_(brows[i], 1);
    tp(i, 0) = boundary_tgt_(brows[i], 2);
    const double m = boundary_tgt_(brows[i], 3);
    mask_uv(i, 0) = m;
    mask_p(i, 0) = 1.0 - m;
  }
  auto bout = net.forward_on_tape(tape, binding, bpts, /*n_deriv=*/0);
  const VarId bu = tensor::col(tape, bout.y, 0);
  const VarId bv = tensor::col(tape, bout.y, 1);
  const VarId bp = tensor::col(tape, bout.y, 2);

  // u target applies only on walls (mask); v applies everywhere (walls and
  // inlet/outlet all impose v = 0); p applies at inlet/outlet (1 - mask).
  const VarId res_u = tensor::mul(tape, tape.constant(mask_uv),
                                  tensor::sub(tape, bu, tape.constant(tu)));
  const VarId res_v = tensor::sub(tape, bv, tape.constant(tv));
  const VarId res_p = tensor::mul(tape, tape.constant(mask_p),
                                  tensor::sub(tape, bp, tape.constant(tp)));
  const VarId bc_loss =
      tensor::add(tape, mse(tape, res_u),
                  tensor::add(tape, mse(tape, res_v), mse(tape, res_p)));

  return combine(tape, {{"pde", pde_loss, 1.0},
                        {"bc", bc_loss, opt_.boundary_weight}});
}

std::vector<double> AnnularProblem::pointwise_residual(
    const nn::Mlp& net, const std::vector<std::uint32_t>& rows) const {
  Tape tape;
  const nn::Mlp::Binding binding = net.bind(tape);
  const Matrix batch = gather_rows(interior_, rows);
  const VarId res_sq = residual_sq_on_tape(tape, net, binding, batch);
  const Matrix& r = tape.value(res_sq);
  std::vector<double> score(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) score[i] = r(i, 0);
  return score;
}

std::vector<ValidationEntry> AnnularProblem::validate_at(
    const nn::Mlp& net, double r_inner) const {
  const cfd::AnnularPoiseuille ref = reference(r_inner);
  const std::size_t nz = 24, nr = 48;
  Matrix grid(nz * nr, 3);
  std::size_t row = 0;
  for (std::size_t iz = 0; iz < nz; ++iz) {
    const double z = opt_.length * (iz + 0.5) / nz;
    for (std::size_t ir = 0; ir < nr; ++ir) {
      const double r = r_inner +
                       (opt_.r_outer - r_inner) * (ir + 0.5) / nr;
      grid(row, 0) = z;
      grid(row, 1) = r;
      grid(row, 2) = r_inner;
      ++row;
    }
  }
  const Matrix pred = net.forward(grid);

  double num_u = 0, den_u = 0, num_v = 0, num_p = 0, den_p = 0;
  for (std::size_t i = 0; i < grid.rows(); ++i) {
    const double ru = ref.axial_velocity(grid(i, 1));
    const double rp = ref.pressure(grid(i, 0), opt_.length);
    const double du = pred(i, 0) - ru;
    const double dp = pred(i, 2) - rp;
    num_u += du * du;
    den_u += ru * ru;
    num_v += pred(i, 1) * pred(i, 1);
    num_p += dp * dp;
    den_p += rp * rp;
  }
  return {{"u", std::sqrt(num_u / (den_u > 0 ? den_u : 1.0))},
          {"v", std::sqrt(num_v / (den_u > 0 ? den_u : 1.0))},
          {"p", std::sqrt(num_p / (den_p > 0 ? den_p : 1.0))}};
}

std::vector<ValidationEntry> AnnularProblem::validate(
    const nn::Mlp& net) const {
  // Paper validates at r_i = 1.0, 0.875, 0.75 and averages.
  const double radii[3] = {1.0, 0.875, 0.75};
  double u = 0, v = 0, p = 0;
  for (double ri : radii) {
    auto e = validate_at(net, ri);
    u += e[0].error;
    v += e[1].error;
    p += e[2].error;
  }
  return {{"u", u / 3}, {"v", v / 3}, {"p", p / 3}};
}

Matrix AnnularProblem::pressure_error_field(const nn::Mlp& net,
                                            double r_inner, std::size_t nz,
                                            std::size_t nr) const {
  const cfd::AnnularPoiseuille ref = reference(r_inner);
  Matrix field(nz * nr, 3);
  Matrix grid(nz * nr, 3);
  std::size_t row = 0;
  for (std::size_t iz = 0; iz < nz; ++iz) {
    const double z = opt_.length * (iz + 0.5) / nz;
    for (std::size_t ir = 0; ir < nr; ++ir) {
      const double r = r_inner + (opt_.r_outer - r_inner) * (ir + 0.5) / nr;
      grid(row, 0) = z;
      grid(row, 1) = r;
      grid(row, 2) = r_inner;
      ++row;
    }
  }
  const Matrix pred = net.forward(grid);
  for (std::size_t i = 0; i < grid.rows(); ++i) {
    field(i, 0) = grid(i, 0);
    field(i, 1) = grid(i, 1);
    field(i, 2) =
        std::fabs(pred(i, 2) - ref.pressure(grid(i, 0), opt_.length));
  }
  return field;
}

}  // namespace sgm::pinn
