#pragma once
// Parameterized annular-ring problem — the Section 4.2 benchmark.
//
// Substitution (documented in DESIGN.md): the paper's annular-ring channel
// with parameterized inner radius, validated against OpenFOAM, is mapped to
// axisymmetric annular Poiseuille flow with parameterized inner radius,
// validated against the exact solution in cfd/analytic.hpp. Same physics
// family (steady incompressible laminar internal flow across a geometric
// parameter), exact ground truth.
//
// Network inputs : (z, r, r_i) — axial coordinate, radial coordinate, and
//                  the geometry parameter r_i in [r_i_min, r_i_max].
// Network outputs: (u, v, p) — axial velocity, radial velocity, pressure.
// Residuals (steady axisymmetric incompressible NS, rho = 1):
//   continuity : u_z + v_r + v / r
//   momentum-z : u u_z + v u_r + p_z - nu (u_zz + u_rr + u_r / r)
//   momentum-r : u v_z + v v_r + p_r - nu (v_zz + v_rr + v_r / r - v / r^2)
// Boundary data: no-slip at r = r_i and r = r_o; p = g*L and v = 0 at the
// inlet z = 0; p = 0 and v = 0 at the outlet z = L.
// Exact solution: u = annular Poiseuille profile, v = 0, p linear in z.

#include "cfd/analytic.hpp"
#include "nn/mlp.hpp"
#include "pinn/pde.hpp"

namespace sgm::pinn {

class AnnularProblem final : public PinnProblem {
 public:
  struct Options {
    double length = 2.0;        ///< duct length L
    double r_outer = 2.0;
    double r_inner_min = 0.75;  ///< paper's parameter range
    double r_inner_max = 1.1;
    double pressure_gradient = 1.0;  ///< g = -dp/dz
    double nu = 0.1;                 ///< paper's viscosity
    std::size_t interior_points = 16384;
    std::size_t boundary_points = 2048;
    std::size_t boundary_batch = 128;
    double boundary_weight = 30.0;
    std::uint64_t seed = 13;
  };

  explicit AnnularProblem(const Options& options);

  std::string name() const override { return "annular_ring_param"; }
  const tensor::Matrix& interior_points() const override { return interior_; }
  std::size_t input_dim() const override { return 3; }
  std::size_t output_dim() const override { return 3; }

  tensor::VarId batch_loss(tensor::Tape& tape, const nn::Mlp& net,
                           const nn::Mlp::Binding& binding,
                           const std::vector<std::uint32_t>& rows,
                           util::Rng& rng) const override;

  std::vector<double> pointwise_residual(
      const nn::Mlp& net,
      const std::vector<std::uint32_t>& rows) const override;

  /// Errors averaged over the paper's three validation radii
  /// (r_i = 1.0, 0.875, 0.75): relative L2 of u and p; v is reported as
  /// RMS(v_pred) / RMS(u_ref) since the exact v is identically zero.
  std::vector<ValidationEntry> validate(const nn::Mlp& net) const override;

  /// Per-radius validation (for Fig. 3's three panels).
  std::vector<ValidationEntry> validate_at(const nn::Mlp& net,
                                           double r_inner) const;

  /// Absolute pressure-error field on an (nz x nr) grid at a fixed r_i
  /// (Fig. 4). Returns a matrix with rows (z, r, |p_err|).
  tensor::Matrix pressure_error_field(const nn::Mlp& net, double r_inner,
                                      std::size_t nz, std::size_t nr) const;

  const Options& options() const { return opt_; }

  /// The exact reference for a given inner radius.
  cfd::AnnularPoiseuille reference(double r_inner) const;

 private:
  tensor::VarId residual_sq_on_tape(tensor::Tape& tape, const nn::Mlp& net,
                                    const nn::Mlp::Binding& binding,
                                    const tensor::Matrix& batch) const;

  Options opt_;
  tensor::Matrix interior_;      // N x 3 (z, r, r_i)
  tensor::Matrix boundary_;      // Nb x 3
  tensor::Matrix boundary_tgt_;  // Nb x 4: (u*, v*, p*, mask) — mask selects
                                 // velocity (1) vs pressure (0) condition
};

}  // namespace sgm::pinn
