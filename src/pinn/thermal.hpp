#pragma once
// Chip-thermal PINN problem — the "chip thermal analysis" CAD workload the
// paper's introduction motivates (Li et al., ICCAD 2004 style full-chip
// steady-state thermal model, reduced to 2-D):
//
//   -k nabla^2 T = q(x, y)  on the unit die,  T = 0 on the boundary
//
// where q is a power-density map of rectangular blocks (cores, caches...).
// The sharply localized hot spots make this an ideal importance-sampling
// showcase: residuals concentrate under and around the power blocks.
// Validation data comes from the FDM solver in cfd/poisson_fdm.hpp.

#include <memory>
#include <vector>

#include "cfd/poisson_fdm.hpp"
#include "pinn/pde.hpp"

namespace sgm::pinn {

/// One rectangular power block on the die (power density in W per area,
/// pre-divided by the conductivity k).
struct PowerBlock {
  double xmin = 0, xmax = 0, ymin = 0, ymax = 0;
  double density = 0.0;
  /// Gaussian edge softening (fraction of the block size) so the PINN sees
  /// a differentiable source; 0 = hard edges.
  double edge_softness = 0.02;

  bool contains(double x, double y) const {
    return x >= xmin && x <= xmax && y >= ymin && y <= ymax;
  }
};

class ChipThermalProblem final : public PinnProblem {
 public:
  struct Options {
    std::vector<PowerBlock> blocks;  ///< empty => default 3-block floorplan
    std::size_t interior_points = 8192;
    std::size_t boundary_points = 1024;
    std::size_t boundary_batch = 128;
    double boundary_weight = 10.0;
    int reference_grid = 129;        ///< FDM validation resolution
    std::uint64_t seed = 23;
  };

  explicit ChipThermalProblem(const Options& options);

  std::string name() const override { return "chip_thermal"; }
  const tensor::Matrix& interior_points() const override { return interior_; }
  std::size_t input_dim() const override { return 2; }
  std::size_t output_dim() const override { return 1; }

  tensor::VarId batch_loss(tensor::Tape& tape, const nn::Mlp& net,
                           const nn::Mlp::Binding& binding,
                           const std::vector<std::uint32_t>& rows,
                           util::Rng& rng) const override;

  std::vector<double> pointwise_residual(
      const nn::Mlp& net,
      const std::vector<std::uint32_t>& rows) const override;

  /// Relative L2 of T against the FDM reference on an interior grid.
  std::vector<ValidationEntry> validate(const nn::Mlp& net) const override;

  /// Smoothed power density q(x, y) the residual uses.
  double power_density(double x, double y) const;

  /// Peak reference temperature (for reporting hot-spot accuracy).
  double reference_peak() const { return reference_peak_; }

  const Options& options() const { return opt_; }

  /// The default floorplan: two hot cores and one wide low-power block.
  static std::vector<PowerBlock> default_floorplan();

 private:
  tensor::VarId residual_on_tape(tensor::Tape& tape, const nn::Mlp& net,
                                 const nn::Mlp::Binding& binding,
                                 const tensor::Matrix& batch) const;

  Options opt_;
  tensor::Matrix interior_;
  tensor::Matrix boundary_;
  std::shared_ptr<const cfd::PoissonFdmSolution> reference_;
  double reference_peak_ = 0.0;
};

}  // namespace sgm::pinn
