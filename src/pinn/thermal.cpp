#include "pinn/thermal.hpp"

#include <cmath>

#include "pinn/geometry.hpp"
#include "pinn/loss.hpp"
#include "pinn/point_cloud.hpp"

namespace sgm::pinn {

using tensor::Matrix;
using tensor::Tape;
using tensor::VarId;

namespace {
// Smooth step: 0 -> 1 over a width `w` transition centered at the edge.
inline double smooth_edge(double d, double w) {
  if (w <= 0.0) return d >= 0.0 ? 1.0 : 0.0;
  return 0.5 * (1.0 + std::tanh(d / w));
}
}  // namespace

std::vector<PowerBlock> ChipThermalProblem::default_floorplan() {
  return {
      {0.15, 0.35, 0.55, 0.85, 40.0, 0.02},  // core 0 (hot)
      {0.60, 0.80, 0.60, 0.80, 55.0, 0.02},  // core 1 (hotter)
      {0.20, 0.80, 0.15, 0.30, 8.0, 0.02},   // cache / uncore (wide, mild)
  };
}

ChipThermalProblem::ChipThermalProblem(const Options& options)
    : opt_(options) {
  if (opt_.blocks.empty()) opt_.blocks = default_floorplan();

  util::Rng rng(opt_.seed);
  Rectangle die(0, 1, 0, 1);
  interior_ = die.sample_interior(opt_.interior_points, rng);

  const std::size_t per_side = opt_.boundary_points / 4;
  boundary_ = Matrix(4 * per_side, 2);
  const Rectangle::Side sides[4] = {
      Rectangle::Side::kBottom, Rectangle::Side::kTop, Rectangle::Side::kLeft,
      Rectangle::Side::kRight};
  std::size_t row = 0;
  for (const auto side : sides) {
    Matrix pts = die.sample_side(side, per_side, rng);
    for (std::size_t i = 0; i < per_side; ++i, ++row) {
      boundary_(row, 0) = pts(i, 0);
      boundary_(row, 1) = pts(i, 1);
    }
  }

  // FDM reference with the same (smoothed) source the PINN sees.
  cfd::PoissonFdmOptions fopt;
  fopt.n = opt_.reference_grid;
  auto ref = cfd::solve_poisson_dirichlet(
      [this](double x, double y) { return power_density(x, y); }, fopt);
  reference_peak_ = ref.t.max_abs();
  reference_ =
      std::make_shared<const cfd::PoissonFdmSolution>(std::move(ref));
}

double ChipThermalProblem::power_density(double x, double y) const {
  double q = 0.0;
  for (const auto& b : opt_.blocks) {
    const double wx = b.edge_softness * (b.xmax - b.xmin);
    const double wy = b.edge_softness * (b.ymax - b.ymin);
    const double gx =
        smooth_edge(x - b.xmin, wx) * smooth_edge(b.xmax - x, wx);
    const double gy =
        smooth_edge(y - b.ymin, wy) * smooth_edge(b.ymax - y, wy);
    q += b.density * gx * gy;
  }
  return q;
}

VarId ChipThermalProblem::residual_on_tape(Tape& tape, const nn::Mlp& net,
                                           const nn::Mlp::Binding& binding,
                                           const Matrix& batch) const {
  auto out = net.forward_on_tape(tape, binding, batch, /*n_deriv=*/2);
  Matrix q(batch.rows(), 1);
  for (std::size_t i = 0; i < batch.rows(); ++i)
    q(i, 0) = power_density(batch(i, 0), batch(i, 1));
  // residual = T_xx + T_yy + q  (so -lap T = q <=> residual = 0)
  const VarId lap = tensor::add(tape, out.d2y[0], out.d2y[1]);
  return tensor::add(tape, lap, tape.constant(std::move(q)));
}

VarId ChipThermalProblem::batch_loss(Tape& tape, const nn::Mlp& net,
                                     const nn::Mlp::Binding& binding,
                                     const std::vector<std::uint32_t>& rows,
                                     util::Rng& rng) const {
  const Matrix batch = gather_rows(interior_, rows);
  const VarId residual = residual_on_tape(tape, net, binding, batch);

  const std::size_t nb =
      std::min<std::size_t>(opt_.boundary_batch, boundary_.rows());
  std::vector<std::uint32_t> brows(nb);
  for (auto& b : brows)
    b = static_cast<std::uint32_t>(rng.uniform_index(boundary_.rows()));
  const Matrix bpts = gather_rows(boundary_, brows);
  auto bout = net.forward_on_tape(tape, binding, bpts, /*n_deriv=*/0);
  // Heat-sink boundary: T = 0.
  return combine(tape,
                 {{"pde", mse(tape, residual), 1.0},
                  {"bc", mse(tape, bout.y), opt_.boundary_weight}});
}

std::vector<double> ChipThermalProblem::pointwise_residual(
    const nn::Mlp& net, const std::vector<std::uint32_t>& rows) const {
  Tape tape;
  const nn::Mlp::Binding binding = net.bind(tape);
  const Matrix batch = gather_rows(interior_, rows);
  const VarId residual = residual_on_tape(tape, net, binding, batch);
  const Matrix& r = tape.value(residual);
  std::vector<double> score(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) score[i] = r(i, 0) * r(i, 0);
  return score;
}

std::vector<ValidationEntry> ChipThermalProblem::validate(
    const nn::Mlp& net) const {
  const Matrix grid = make_grid(0.02, 0.98, 48, 0.02, 0.98, 48);
  const Matrix pred = net.forward(grid);
  double num = 0, den = 0, peak_err = 0;
  for (std::size_t i = 0; i < grid.rows(); ++i) {
    const double ref = reference_->sample(grid(i, 0), grid(i, 1));
    const double d = pred(i, 0) - ref;
    num += d * d;
    den += ref * ref;
    peak_err = std::max(peak_err, std::fabs(d));
  }
  return {{"T", std::sqrt(num / (den > 0 ? den : 1.0))},
          {"T_peak_abs", peak_err / std::max(reference_peak_, 1e-300)}};
}

}  // namespace sgm::pinn
