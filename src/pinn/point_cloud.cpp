#include "pinn/point_cloud.hpp"

#include <stdexcept>

namespace sgm::pinn {

using tensor::Matrix;

Matrix gather_rows(const Matrix& m, const std::vector<std::uint32_t>& rows) {
  Matrix out(rows.size(), m.cols());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r] >= m.rows())
      throw std::out_of_range("gather_rows: index out of range");
    const double* src = m.row(rows[r]);
    double* dst = out.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) dst[c] = src[c];
  }
  return out;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  std::vector<double> v(n);
  if (n == 1) {
    v[0] = lo;
    return v;
  }
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) v[i] = lo + step * static_cast<double>(i);
  return v;
}

Matrix make_grid(double x0, double x1, std::size_t nx, double y0, double y1,
                 std::size_t ny) {
  const auto xs = linspace(x0, x1, nx);
  const auto ys = linspace(y0, y1, ny);
  Matrix pts(nx * ny, 2);
  std::size_t row = 0;
  for (double y : ys)
    for (double x : xs) {
      pts(row, 0) = x;
      pts(row, 1) = y;
      ++row;
    }
  return pts;
}

ColumnRange column_range(const Matrix& m) {
  ColumnRange r;
  r.min.assign(m.cols(), 0.0);
  r.max.assign(m.cols(), 0.0);
  if (m.rows() == 0) return r;
  for (std::size_t c = 0; c < m.cols(); ++c) {
    double lo = m(0, c), hi = m(0, c);
    for (std::size_t i = 1; i < m.rows(); ++i) {
      lo = std::min(lo, m(i, c));
      hi = std::max(hi, m(i, c));
    }
    r.min[c] = lo;
    r.max[c] = hi;
  }
  return r;
}

}  // namespace sgm::pinn
