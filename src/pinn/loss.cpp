#include "pinn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace sgm::pinn {

using tensor::Tape;
using tensor::VarId;

VarId mse(Tape& tape, VarId residual) {
  return tensor::mean_all(tape, tensor::square(tape, residual));
}

VarId weighted_mse(Tape& tape, VarId residual, const tensor::Matrix& weights) {
  return tensor::weighted_mean(tape, tensor::square(tape, residual), weights);
}

VarId combine(Tape& tape, const std::vector<LossTerm>& terms) {
  if (terms.empty()) throw std::invalid_argument("combine: no loss terms");
  VarId acc = tensor::scale(tape, terms[0].value, terms[0].weight);
  for (std::size_t i = 1; i < terms.size(); ++i)
    acc = tensor::add(tape, acc,
                      tensor::scale(tape, terms[i].value, terms[i].weight));
  return acc;
}

double SqrtEps::eval(double x, int order) const {
  const double s = std::sqrt(std::max(x, 0.0) + eps_);
  switch (order) {
    case 0: return s;
    case 1: return 0.5 / s;
    case 2: return -0.25 / (s * s * s);
    case 3: return 0.375 / (s * s * s * s * s);
    default:
      throw std::invalid_argument("SqrtEps: order > 3 not supported");
  }
}

const SqrtEps& sqrt_eps() {
  static const SqrtEps f;
  return f;
}

}  // namespace sgm::pinn
