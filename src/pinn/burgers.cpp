#include "pinn/burgers.hpp"

#include <cmath>

#include "cfd/analytic.hpp"
#include "pinn/loss.hpp"
#include "pinn/point_cloud.hpp"

namespace sgm::pinn {

using tensor::Matrix;
using tensor::Tape;
using tensor::VarId;

BurgersProblem::BurgersProblem(const Options& options) : opt_(options) {
  util::Rng rng(opt_.seed);

  interior_ = Matrix(opt_.interior_points, 2);
  for (std::size_t i = 0; i < opt_.interior_points; ++i) {
    interior_(i, 0) = rng.uniform(-1.0, 1.0);
    interior_(i, 1) = rng.uniform(0.0, opt_.t_final);
  }

  // IC line (t = 0) followed by the two walls (x = -1 and x = +1, u = 0).
  const std::size_t nb = opt_.initial_points + 2 * opt_.wall_points;
  boundary_ = Matrix(nb, 2);
  boundary_value_ = Matrix(nb, 1);
  std::size_t row = 0;
  for (std::size_t i = 0; i < opt_.initial_points; ++i, ++row) {
    const double x = rng.uniform(-1.0, 1.0);
    boundary_(row, 0) = x;
    boundary_(row, 1) = 0.0;
    boundary_value_(row, 0) = -std::sin(M_PI * x);
  }
  for (const double wall : {-1.0, 1.0}) {
    for (std::size_t i = 0; i < opt_.wall_points; ++i, ++row) {
      boundary_(row, 0) = wall;
      boundary_(row, 1) = rng.uniform(0.0, opt_.t_final);
      boundary_value_(row, 0) = 0.0;
    }
  }

  // Validation grid with the exact Cole–Hopf reference, computed once.
  const std::size_t nv = opt_.validation_nx * opt_.validation_nt;
  validation_pts_ = Matrix(nv, 2);
  validation_ref_.resize(nv);
  const auto xs = linspace(-1.0, 1.0, opt_.validation_nx);
  std::size_t v = 0;
  for (std::size_t j = 1; j <= opt_.validation_nt; ++j) {
    const double t =
        opt_.t_final * static_cast<double>(j) / opt_.validation_nt;
    for (std::size_t i = 0; i < opt_.validation_nx; ++i, ++v) {
      validation_pts_(v, 0) = xs[i];
      validation_pts_(v, 1) = t;
      validation_ref_[v] =
          cfd::burgers_cole_hopf_solution(xs[i], t, opt_.nu);
    }
  }
}

VarId BurgersProblem::residual_on_tape(Tape& tape, const nn::Mlp& net,
                                       const nn::Mlp::Binding& binding,
                                       const Matrix& batch) const {
  // Input dim 0 = x, dim 1 = t: dy[0] = u_x, dy[1] = u_t, d2y[0] = u_xx.
  auto out = net.forward_on_tape(tape, binding, batch, /*n_deriv=*/2);
  const VarId convection = tensor::mul(tape, out.y, out.dy[0]);
  const VarId diffusion = tensor::scale(tape, out.d2y[0], -opt_.nu);
  return tensor::add(tape, out.dy[1], tensor::add(tape, convection, diffusion));
}

VarId BurgersProblem::batch_loss(Tape& tape, const nn::Mlp& net,
                                 const nn::Mlp::Binding& binding,
                                 const std::vector<std::uint32_t>& rows,
                                 util::Rng& rng) const {
  const Matrix batch = gather_rows(interior_, rows);
  const VarId residual = residual_on_tape(tape, net, binding, batch);

  const std::size_t nb =
      std::min<std::size_t>(opt_.boundary_batch, boundary_.rows());
  std::vector<std::uint32_t> brows(nb);
  for (auto& b : brows)
    b = static_cast<std::uint32_t>(rng.uniform_index(boundary_.rows()));
  const Matrix bpts = gather_rows(boundary_, brows);
  Matrix btarget(nb, 1);
  for (std::size_t i = 0; i < nb; ++i)
    btarget(i, 0) = boundary_value_(brows[i], 0);

  auto bout = net.forward_on_tape(tape, binding, bpts, /*n_deriv=*/0);
  const VarId bresidual =
      tensor::sub(tape, bout.y, tape.constant(std::move(btarget)));

  return combine(tape, {{"pde", mse(tape, residual), 1.0},
                        {"bc", mse(tape, bresidual), opt_.boundary_weight}});
}

std::vector<double> BurgersProblem::pointwise_residual(
    const nn::Mlp& net, const std::vector<std::uint32_t>& rows) const {
  Tape tape;
  const nn::Mlp::Binding binding = net.bind(tape);
  const Matrix batch = gather_rows(interior_, rows);
  const VarId residual = residual_on_tape(tape, net, binding, batch);
  const Matrix& r = tape.value(residual);
  std::vector<double> score(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) score[i] = r(i, 0) * r(i, 0);
  return score;
}

std::vector<ValidationEntry> BurgersProblem::validate(
    const nn::Mlp& net) const {
  const Matrix pred = net.forward(validation_pts_);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < validation_ref_.size(); ++i) {
    const double d = pred(i, 0) - validation_ref_[i];
    num += d * d;
    den += validation_ref_[i] * validation_ref_[i];
  }
  return {{"u", std::sqrt(num / (den > 0 ? den : 1.0))}};
}

}  // namespace sgm::pinn
