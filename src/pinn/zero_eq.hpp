#pragma once
// Zero-equation (mixing-length) turbulence closure, matching the Modulus
// "ZeroEquation" node used by the paper's LDC example:
//
//   nu_t = rho * l_m^2 * sqrt(G),   G = 2 (u_x^2 + v_y^2) + (u_y + v_x)^2
//   l_m  = min(karman * d, max_distance_ratio * max_distance)
//
// where d is the normal wall distance (geometry-supplied, constant per
// collocation point). nu_t is built from first derivatives of the network
// outputs on the tape, so the turbulent stress is differentiated w.r.t.
// the weights like every other residual term.

#include "nn/mlp.hpp"
#include "tensor/ops.hpp"

namespace sgm::pinn {

struct ZeroEqOptions {
  double karman = 0.419;
  double max_distance_ratio = 0.09;
  double max_distance = 0.5;  ///< cavity half-width for the LDC example
  double rho = 1.0;
};

/// Emits nu_t (n x 1) on the tape. `wall_distance` holds d per batch row;
/// dy are the network-output Jacobian columns (dy[0] = d(outputs)/dx,
/// dy[1] = d(outputs)/dy) from Mlp::forward_on_tape; u and v are output
/// column indices.
tensor::VarId zero_eq_nu_t(tensor::Tape& tape,
                           const nn::Mlp::TapeOutputs& out, std::size_t u_col,
                           std::size_t v_col,
                           const tensor::Matrix& wall_distance,
                           const ZeroEqOptions& options);

/// Mixing length l_m at a wall distance (exposed for tests/validation).
double mixing_length(double wall_distance, const ZeroEqOptions& options);

}  // namespace sgm::pinn
