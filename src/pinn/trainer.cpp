#include "pinn/trainer.hpp"

#include <cmath>
#include <filesystem>
#include <memory>
#include <stdexcept>

#include "pinn/train_checkpoint.hpp"
#include "util/csv.hpp"
#include "util/failpoint.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace sgm::pinn {

namespace {
bool all_finite(const tensor::Matrix& m) {
  const double* p = m.data();
  for (std::size_t i = 0; i < m.size(); ++i)
    if (!std::isfinite(p[i])) return false;
  return true;
}
}  // namespace

double TrainHistory::best_error(const std::string& metric) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& rec : records)
    for (const auto& entry : rec.validation)
      if (entry.name == metric) best = std::min(best, entry.error);
  return best;
}

double TrainHistory::time_to_reach(const std::string& metric,
                                   double threshold) const {
  for (const auto& rec : records)
    for (const auto& entry : rec.validation)
      if (entry.name == metric && entry.error <= threshold)
        return rec.train_wall_s;
  return std::numeric_limits<double>::infinity();
}

Trainer::Trainer(const PinnProblem& problem, nn::Mlp& net,
                 samplers::Sampler& sampler, const TrainerOptions& options)
    : problem_(problem), net_(net), sampler_(sampler), opt_(options) {}

TrainHistory Trainer::run() {
  util::Rng rng(opt_.seed);
  nn::Adam adam(opt_.learning_rate);
  const nn::ExponentialDecaySchedule schedule(
      opt_.learning_rate, opt_.lr_gamma, opt_.lr_decay_steps);

  samplers::LossEvaluator evaluate =
      [this](const std::vector<std::uint32_t>& rows) {
        return problem_.pointwise_residual(net_, rows);
      };

  std::unique_ptr<util::CsvWriter> csv;

  TrainHistory history;
  history.sampler_name = sampler_.name();
  double train_wall = 0.0;
  double loss_accum = 0.0;
  std::uint64_t loss_count = 0;

  auto record_point = [&](std::uint64_t iteration) {
    TrainRecord rec;
    rec.iteration = iteration;
    rec.train_wall_s = train_wall;
    rec.mean_loss = loss_count ? loss_accum / loss_count : 0.0;
    rec.validation = problem_.validate(net_);  // outside the wall clock
    loss_accum = 0.0;
    loss_count = 0;
    if (!opt_.telemetry_csv.empty()) {
      if (!csv) {
        std::vector<std::string> header = {"iteration", "train_wall_s",
                                           "mean_loss"};
        for (const auto& e : rec.validation) header.push_back("err_" + e.name);
        csv = std::make_unique<util::CsvWriter>(opt_.telemetry_csv, header);
      }
      std::vector<double> row = {static_cast<double>(iteration), train_wall,
                                 rec.mean_loss};
      for (const auto& e : rec.validation) row.push_back(e.error);
      csv->row(row);
    }
    history.records.push_back(std::move(rec));
  };

  // The tape and its companions are hoisted out of the loop: clear()
  // retains every node's Matrix capacity, so steady-state steps re-record
  // the graph into pooled buffers with zero heap allocations in the
  // tape/forward/backward path.
  tensor::Tape tape;
  tape.set_num_threads(util::resolve_threads(opt_.num_threads));
  nn::Mlp::Binding binding;
  std::vector<tensor::Matrix> grads;
  const std::vector<tensor::Matrix*> params = net_.parameters();

  double lr_scale = 1.0;  ///< divergence-backoff multiplier on the schedule
  std::uint64_t it = 0;   ///< completed iterations

  // TrainCheckpoint doubles as the in-memory rollback snapshot — it is by
  // construction exactly the state the loop reads.
  auto capture = [&]() {
    TrainCheckpoint s;
    s.iteration = it;
    s.train_wall_s = train_wall;
    s.loss_accum = loss_accum;
    s.loss_count = loss_count;
    s.lr_scale = lr_scale;
    s.rng = rng.state();
    s.adam = adam.state();
    s.params.reserve(params.size());
    for (const auto* p : params) s.params.push_back(*p);
    s.sampler = sampler_.resume_state();
    return s;
  };
  auto restore = [&](const TrainCheckpoint& s) {
    if (s.params.size() != params.size())
      throw std::invalid_argument("Trainer: checkpoint has " +
                                  std::to_string(s.params.size()) +
                                  " tensors, net has " +
                                  std::to_string(params.size()));
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (!params[i]->same_shape(s.params[i]))
        throw std::invalid_argument(
            "Trainer: checkpoint tensor shape mismatch at " +
            std::to_string(i));
      *params[i] = s.params[i];
    }
    it = s.iteration;
    train_wall = s.train_wall_s;
    loss_accum = s.loss_accum;
    loss_count = s.loss_count;
    lr_scale = s.lr_scale;
    rng.set_state(s.rng);
    adam.set_state(s.adam);
    // Empty dealer state = this sampler keeps no resumable stream position
    // (SGM rebuilds its tables); restoring would be meaningless.
    if (!s.sampler.indices.empty()) sampler_.set_resume_state(s.sampler);
  };

  if (opt_.resume && !opt_.checkpoint_path.empty()) {
    std::error_code ec;
    if (std::filesystem::exists(opt_.checkpoint_path, ec)) {
      restore(load_train_checkpoint(opt_.checkpoint_path));
      history.resumed_from_iteration = it;
      util::log_info() << "Trainer[" << sampler_.name() << "]: resumed '"
                       << opt_.checkpoint_path << "' at iteration " << it;
    } else {
      util::log_info() << "Trainer[" << sampler_.name()
                       << "]: resume requested but '" << opt_.checkpoint_path
                       << "' does not exist; starting fresh";
    }
  }

  TrainCheckpoint snapshot;  ///< rollback point (valid iff have_snapshot)
  bool have_snapshot = false;
  std::size_t retries = 0;  ///< divergences since the last good snapshot
  if (opt_.snapshot_every > 0) {
    snapshot = capture();
    have_snapshot = true;
  }

  while (it < opt_.max_iterations) {
    util::WallTimer step_timer;

    sampler_.maybe_refresh(it, evaluate, rng);
    const std::vector<std::uint32_t> rows =
        sampler_.next_batch(opt_.batch_size, rng);

    tape.clear();
    net_.bind(tape, &binding);
    const tensor::VarId loss =
        problem_.batch_loss(tape, net_, binding, rows, rng);
    tape.backward(loss);
    net_.collect_grads_into(tape, binding, &grads);

    // Divergence sentinel — checked BEFORE the optimizer applies the step,
    // so a blow-up never reaches the parameters. `trainer.diverge` injects
    // one for the chaos tests.
    const double loss_value = tape.value(loss)(0, 0);
    bool diverged =
        !std::isfinite(loss_value) || SGM_FAILPOINT_HIT("trainer.diverge");
    if (!diverged) {
      for (const auto& g : grads) {
        if (!all_finite(g)) {
          diverged = true;
          break;
        }
      }
    }
    if (diverged) {
      train_wall += step_timer.elapsed_s();  // blown steps cost real time
      ++history.divergence_rollbacks;
      if (!have_snapshot)
        throw std::runtime_error(
            "Trainer: non-finite loss/gradient at iteration " +
            std::to_string(it) +
            " and rollback is disabled (snapshot_every == 0)");
      if (++retries > opt_.max_divergence_retries)
        throw std::runtime_error(
            "Trainer: diverged " + std::to_string(retries) +
            " times since the last good snapshot (iteration " +
            std::to_string(snapshot.iteration) + "); giving up");
      const double backed_off = lr_scale * opt_.divergence_lr_backoff;
      restore(snapshot);
      lr_scale = backed_off;  // keep the new backoff, not the snapshot's
      // Drop telemetry from the rolled-back segment so history never shows
      // an iteration twice. (Rows already written to the CSV stay — the
      // history object is the source of truth for the tables.)
      while (!history.records.empty() &&
             history.records.back().iteration > it)
        history.records.pop_back();
      util::log_info() << "Trainer[" << sampler_.name()
                       << "]: divergence -> rolled back to iteration " << it
                       << ", lr scale " << lr_scale;
      continue;
    }

    adam.set_learning_rate(schedule.lr(it) * lr_scale);
    adam.step(params, grads);

    train_wall += step_timer.elapsed_s();
    loss_accum += loss_value;
    ++loss_count;
    ++it;

    const bool last = (it == opt_.max_iterations);
    const bool budget_hit =
        opt_.wall_time_budget_s > 0.0 && train_wall >= opt_.wall_time_budget_s;
    if (it % opt_.validate_every == 0 || last || budget_hit)
      record_point(it);
    if (opt_.snapshot_every > 0 && it % opt_.snapshot_every == 0) {
      snapshot = capture();
      have_snapshot = true;
      retries = 0;
    }
    if (!opt_.checkpoint_path.empty() &&
        (last || budget_hit ||
         (opt_.checkpoint_every > 0 && it % opt_.checkpoint_every == 0)))
      save_train_checkpoint(capture(), opt_.checkpoint_path);
    if (budget_hit) {
      util::log_info() << "Trainer[" << sampler_.name()
                       << "]: wall budget reached at iteration " << it;
      break;
    }
  }

  if (csv) csv->close();  // throwing final flush: lost telemetry is an error

  history.total_train_wall_s = train_wall;
  history.sampler_refresh_s = sampler_.refresh_seconds();
  history.sampler_loss_evaluations = sampler_.loss_evaluations();
  return history;
}

}  // namespace sgm::pinn
