#include "pinn/trainer.hpp"

#include <memory>

#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace sgm::pinn {

double TrainHistory::best_error(const std::string& metric) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& rec : records)
    for (const auto& entry : rec.validation)
      if (entry.name == metric) best = std::min(best, entry.error);
  return best;
}

double TrainHistory::time_to_reach(const std::string& metric,
                                   double threshold) const {
  for (const auto& rec : records)
    for (const auto& entry : rec.validation)
      if (entry.name == metric && entry.error <= threshold)
        return rec.train_wall_s;
  return std::numeric_limits<double>::infinity();
}

Trainer::Trainer(const PinnProblem& problem, nn::Mlp& net,
                 samplers::Sampler& sampler, const TrainerOptions& options)
    : problem_(problem), net_(net), sampler_(sampler), opt_(options) {}

TrainHistory Trainer::run() {
  util::Rng rng(opt_.seed);
  nn::Adam adam(opt_.learning_rate);
  const nn::ExponentialDecaySchedule schedule(
      opt_.learning_rate, opt_.lr_gamma, opt_.lr_decay_steps);

  samplers::LossEvaluator evaluate =
      [this](const std::vector<std::uint32_t>& rows) {
        return problem_.pointwise_residual(net_, rows);
      };

  std::unique_ptr<util::CsvWriter> csv;

  TrainHistory history;
  history.sampler_name = sampler_.name();
  double train_wall = 0.0;
  double loss_accum = 0.0;
  std::uint64_t loss_count = 0;

  auto record_point = [&](std::uint64_t iteration) {
    TrainRecord rec;
    rec.iteration = iteration;
    rec.train_wall_s = train_wall;
    rec.mean_loss = loss_count ? loss_accum / loss_count : 0.0;
    rec.validation = problem_.validate(net_);  // outside the wall clock
    loss_accum = 0.0;
    loss_count = 0;
    if (!opt_.telemetry_csv.empty()) {
      if (!csv) {
        std::vector<std::string> header = {"iteration", "train_wall_s",
                                           "mean_loss"};
        for (const auto& e : rec.validation) header.push_back("err_" + e.name);
        csv = std::make_unique<util::CsvWriter>(opt_.telemetry_csv, header);
      }
      std::vector<double> row = {static_cast<double>(iteration), train_wall,
                                 rec.mean_loss};
      for (const auto& e : rec.validation) row.push_back(e.error);
      csv->row(row);
    }
    history.records.push_back(std::move(rec));
  };

  // The tape and its companions are hoisted out of the loop: clear()
  // retains every node's Matrix capacity, so steady-state steps re-record
  // the graph into pooled buffers with zero heap allocations in the
  // tape/forward/backward path.
  tensor::Tape tape;
  tape.set_num_threads(util::resolve_threads(opt_.num_threads));
  nn::Mlp::Binding binding;
  std::vector<tensor::Matrix> grads;
  const std::vector<tensor::Matrix*> params = net_.parameters();

  for (std::uint64_t it = 0; it < opt_.max_iterations; ++it) {
    util::WallTimer step_timer;

    sampler_.maybe_refresh(it, evaluate, rng);
    const std::vector<std::uint32_t> rows =
        sampler_.next_batch(opt_.batch_size, rng);

    tape.clear();
    net_.bind(tape, &binding);
    const tensor::VarId loss =
        problem_.batch_loss(tape, net_, binding, rows, rng);
    tape.backward(loss);
    net_.collect_grads_into(tape, binding, &grads);

    adam.set_learning_rate(schedule.lr(it));
    adam.step(params, grads);

    train_wall += step_timer.elapsed_s();
    loss_accum += tape.value(loss)(0, 0);
    ++loss_count;

    const bool last = (it + 1 == opt_.max_iterations);
    const bool budget_hit =
        opt_.wall_time_budget_s > 0.0 && train_wall >= opt_.wall_time_budget_s;
    if ((it + 1) % opt_.validate_every == 0 || last || budget_hit)
      record_point(it + 1);
    if (budget_hit) {
      util::log_info() << "Trainer[" << sampler_.name()
                       << "]: wall budget reached at iteration " << it + 1;
      break;
    }
  }

  history.total_train_wall_s = train_wall;
  history.sampler_refresh_s = sampler_.refresh_seconds();
  history.sampler_loss_evaluations = sampler_.loss_evaluations();
  return history;
}

}  // namespace sgm::pinn
