#pragma once
// 2-D Helmholtz equation on the unit square — the oscillatory scenario:
//
//   nabla^2 u + k^2 u = q,   u = 0 on the boundary,
//
// with the manufactured solution u = sin(a1 pi x) sin(a2 pi y) from
// cfd/analytic.hpp. An anisotropic mode pair (a1 = 1, a2 = 4 by default)
// gives a field that oscillates much faster in y than in x; the residual
// of an undertrained network is spread over many small high-frequency
// pockets, which stresses importance sampling far more than the smooth
// Poisson bump.
//
// Network inputs : (x, y);  network output: u.

#include "nn/mlp.hpp"
#include "pinn/pde.hpp"

namespace sgm::pinn {

class HelmholtzProblem final : public PinnProblem {
 public:
  struct Options {
    int a1 = 1;                  ///< x mode number
    int a2 = 4;                  ///< y mode number (the oscillatory axis)
    double wavenumber = 1.0;     ///< k in nabla^2 u + k^2 u = q
    std::size_t interior_points = 4096;
    std::size_t boundary_points = 512;   ///< total across the four walls
    std::size_t boundary_batch = 128;    ///< per training step
    double boundary_weight = 10.0;
    std::uint64_t seed = 31;
  };

  explicit HelmholtzProblem(const Options& options);

  std::string name() const override { return "helmholtz2d"; }
  const tensor::Matrix& interior_points() const override { return interior_; }
  std::size_t input_dim() const override { return 2; }
  std::size_t output_dim() const override { return 1; }

  tensor::VarId batch_loss(tensor::Tape& tape, const nn::Mlp& net,
                           const nn::Mlp::Binding& binding,
                           const std::vector<std::uint32_t>& rows,
                           util::Rng& rng) const override;

  std::vector<double> pointwise_residual(
      const nn::Mlp& net,
      const std::vector<std::uint32_t>& rows) const override;

  /// Relative L2 of u against the manufactured solution on an interior grid.
  std::vector<ValidationEntry> validate(const nn::Mlp& net) const override;

  const Options& options() const { return opt_; }

 private:
  tensor::VarId residual_on_tape(tensor::Tape& tape, const nn::Mlp& net,
                                 const nn::Mlp::Binding& binding,
                                 const tensor::Matrix& batch) const;

  Options opt_;
  tensor::Matrix interior_;   // N x 2
  tensor::Matrix boundary_;   // Nb x 2 (u = 0 on all four walls)
};

}  // namespace sgm::pinn
