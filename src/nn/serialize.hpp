#pragma once
// Checkpointing: save/restore MLP parameters. Text format, one header line
// (magic, version, tensor count) followed by one line per tensor
// (rows cols, then row-major values with full double precision), so
// checkpoints are portable, diffable and greppable.
//
// The format stores parameters only — the architecture (width/depth/
// activation/encoding) comes from code, and load_parameters() verifies the
// shapes match before touching the network.

#include <iosfwd>
#include <string>

#include "nn/mlp.hpp"

namespace sgm::nn {

/// Writes all parameters of `net` to `out`. Throws std::runtime_error on
/// stream failure.
void save_parameters(const Mlp& net, std::ostream& out);

/// Reads parameters into `net`. Throws std::runtime_error on malformed
/// input or architecture mismatch (shape counts/dims must match exactly).
void load_parameters(Mlp& net, std::istream& in);

/// File-path convenience wrappers.
void save_checkpoint(const Mlp& net, const std::string& path);
void load_checkpoint(Mlp& net, const std::string& path);

}  // namespace sgm::nn
