#pragma once
// Checkpointing: save/restore MLP models.
//
// Format v2 (binary, the serving registry's on-disk contract):
//   "SGMCKPT2" magic, u32 format version, then a header (scenario name,
//   model version, the full architecture: dims, activation name, encoding)
//   followed by every parameter tensor, and an FNV-1a64 checksum trailer
//   over the whole body. All integers and doubles are encoded explicitly as
//   little-endian bytes (doubles via their IEEE-754 bit pattern), so a
//   checkpoint written on any host reads back bit-identically on any other
//   — and the checksum turns any single flipped byte into a load error
//   instead of silently corrupted predictions.
//
// Format v1 (legacy, text): "sgm-mlp" magic + decimal values. Still
// readable through load_parameters() for old checkpoints (a committed
// fixture under tests/data/ pins this); no longer written.
//
// Two API levels:
//  * parameter-only (save_parameters/load_parameters + the *_checkpoint
//    path wrappers): the architecture comes from the caller's net, whose
//    shapes must match the checkpoint exactly;
//  * full-model (save_model/load_model + read_model_info): the header's
//    architecture snapshot is enough to reconstruct the Mlp from the file
//    alone — what serve::ModelRegistry loads on demand. Activations are
//    restored by name through activation_by_name() (i.e. the library
//    singletons; a Sine with non-default w0 is not representable).
//    Encodings: identity/null and FourierEncoding (frequency matrix stored).

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "nn/mlp.hpp"

namespace sgm::nn {

inline constexpr std::uint32_t kCheckpointFormatVersion = 2;

/// Registry-level identity of a checkpoint (who it is, not what it is).
struct CheckpointMeta {
  std::string scenario;            ///< registry key; "" outside the registry
  std::uint64_t model_version = 0; ///< publish counter; 0 = unversioned
};

/// Everything the header + trailer carry, decoded.
struct CheckpointInfo {
  CheckpointMeta meta;
  MlpConfig config;               ///< reconstructed architecture
  std::uint64_t checksum = 0;     ///< FNV-1a64 of the body, as stored
  std::uint32_t format_version = kCheckpointFormatVersion;
};

// ---------------------------------------------------------------------------
// Parameter-only API (architecture supplied by the caller's net)
// ---------------------------------------------------------------------------

/// Writes `net` as a v2 binary checkpoint with empty meta. Throws
/// std::runtime_error on stream failure.
void save_parameters(const Mlp& net, std::ostream& out);

/// Reads parameters into `net` from a v2 binary OR legacy v1 text
/// checkpoint. Throws std::runtime_error on malformed/truncated/corrupt
/// input (checksum verified for v2), unsupported format versions, or any
/// architecture mismatch.
void load_parameters(Mlp& net, std::istream& in);

/// File-path wrappers. Saving is crash-safe and durable: the bytes go
/// through util::write_file_durable (temp file + fsync file + atomic
/// rename + fsync directory), so `path` never names a partial checkpoint
/// and a completed save survives power loss.
void save_checkpoint(const Mlp& net, const std::string& path);
void load_checkpoint(Mlp& net, const std::string& path);

// ---------------------------------------------------------------------------
// Full-model API (architecture restored from the header)
// ---------------------------------------------------------------------------

/// Writes `net` with `meta` as a v2 binary checkpoint. The file variant
/// is crash-safe + durable (same write_file_durable protocol as
/// save_checkpoint); the stream variant flushes and checks the stream but
/// cannot fsync — callers owning a path should prefer the file variant.
void save_model(const Mlp& net, std::ostream& out, const CheckpointMeta& meta);
void save_model_file(const Mlp& net, const std::string& path,
                     const CheckpointMeta& meta);

struct LoadedModel {
  CheckpointInfo info;
  std::unique_ptr<Mlp> model;
};

/// Reconstructs the full model from a v2 checkpoint (header architecture +
/// weights, checksum verified). Legacy v1 checkpoints carry no architecture
/// and are rejected with an explanatory error — load those through
/// load_parameters() into a caller-built net.
LoadedModel load_model(std::istream& in);
LoadedModel load_model_file(const std::string& path);

/// Header + checksum only (weights parsed and verified, then discarded).
CheckpointInfo read_model_info(const std::string& path);

}  // namespace sgm::nn
