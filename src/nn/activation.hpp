#pragma once
// Activation functions with analytic derivatives up to order 3.
//
// PDE residuals need second derivatives of the network w.r.t. its inputs;
// those second derivatives are themselves differentiated w.r.t. the weights
// during backprop, which requires one more derivative order — hence every
// activation supplies f, f', f'' and f'''.

#include <string>

#include "tensor/ops.hpp"

namespace sgm::nn {

class Activation : public tensor::ElementwiseFunction {
 public:
  virtual std::string name() const = 0;
};

/// SiLU / swish: f(x) = x * sigmoid(x). The paper's networks use SiLU.
class Silu final : public Activation {
 public:
  double eval(double x, int order) const override;
  void eval_orders(double x, int max_order, double* out) const override;
  std::string name() const override { return "silu"; }
};

class Tanh final : public Activation {
 public:
  double eval(double x, int order) const override;
  void eval_orders(double x, int max_order, double* out) const override;
  std::string name() const override { return "tanh"; }
};

class Sigmoid final : public Activation {
 public:
  double eval(double x, int order) const override;
  void eval_orders(double x, int max_order, double* out) const override;
  std::string name() const override { return "sigmoid"; }
};

/// sin(w0 * x) — SIREN-style periodic activation.
class Sine final : public Activation {
 public:
  explicit Sine(double w0 = 1.0) : w0_(w0) {}
  double eval(double x, int order) const override;
  void eval_orders(double x, int max_order, double* out) const override;
  std::string name() const override { return "sine"; }

 private:
  double w0_;
};

class Identity final : public Activation {
 public:
  double eval(double x, int order) const override;
  std::string name() const override { return "identity"; }
};

/// Long-lived singletons (the tape stores raw pointers to activations).
const Activation& silu();
const Activation& tanh_act();
const Activation& sigmoid_act();
const Activation& sine_act();
const Activation& identity_act();

/// Lookup by name ("silu", "tanh", "sigmoid", "sine", "identity");
/// throws std::invalid_argument on unknown names.
const Activation& activation_by_name(const std::string& name);

}  // namespace sgm::nn
