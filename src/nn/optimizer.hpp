#pragma once
// First-order optimizers (Eq. 5) and learning-rate schedules.

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace sgm::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update: params[i] -= step(grads[i]). The param/grad lists
  /// must keep a stable order and shape across calls (internal state is
  /// allocated lazily on first step and keyed by position).
  virtual void step(const std::vector<tensor::Matrix*>& params,
                    const std::vector<tensor::Matrix>& grads) = 0;

  virtual void set_learning_rate(double lr) = 0;
  virtual double learning_rate() const = 0;

  /// Number of step() calls so far.
  std::uint64_t iterations() const { return iterations_; }

 protected:
  std::uint64_t iterations_ = 0;
};

/// Plain SGD with optional classical momentum.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0);
  void step(const std::vector<tensor::Matrix*>& params,
            const std::vector<tensor::Matrix>& grads) override;
  void set_learning_rate(double lr) override { lr_ = lr; }
  double learning_rate() const override { return lr_; }

 private:
  double lr_;
  double momentum_;
  std::vector<tensor::Matrix> velocity_;
};

/// Adam's mutable state, snapshotted whole: moments, running bias-correction
/// powers and the step counter. Restoring it (set_state) makes a subsequent
/// step() bitwise-identical to one taken from the original — the trainer's
/// divergence rollback and durable train checkpoints both ride on this.
struct AdamState {
  std::uint64_t iterations = 0;
  double beta1_pow = 1.0, beta2_pow = 1.0;
  std::vector<tensor::Matrix> m, v;
};

/// Adam (Kingma & Ba) with bias correction — the optimizer Modulus uses for
/// the paper's examples.
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);
  void step(const std::vector<tensor::Matrix*>& params,
            const std::vector<tensor::Matrix>& grads) override;
  void set_learning_rate(double lr) override { lr_ = lr; }
  double learning_rate() const override { return lr_; }

  /// Deep copy of the mutable state (hyperparameters excluded — they live
  /// in the constructor arguments and set_learning_rate).
  AdamState state() const;
  /// Restores a snapshot taken by state(). The moment shapes must match the
  /// params of the next step() (checked there, as on any step).
  void set_state(AdamState st);

 private:
  double lr_, beta1_, beta2_, eps_;
  double beta1_pow_ = 1.0, beta2_pow_ = 1.0;  ///< beta^t, updated per step
  std::vector<tensor::Matrix> m_, v_;
};

/// lr(step) = lr0 * gamma^(step / decay_steps) — Modulus' default
/// tf.ExponentialDecay-style schedule.
class ExponentialDecaySchedule {
 public:
  ExponentialDecaySchedule(double lr0, double gamma, std::uint64_t decay_steps)
      : lr0_(lr0), gamma_(gamma), decay_steps_(decay_steps) {}
  double lr(std::uint64_t step) const;

 private:
  double lr0_, gamma_;
  std::uint64_t decay_steps_;
};

}  // namespace sgm::nn
