#include "nn/encoding.hpp"

#include <cmath>
#include <stdexcept>

namespace sgm::nn {

using tensor::Matrix;

void IdentityEncoding::encode(const Matrix& x, int n_deriv, Matrix& e,
                              std::vector<Matrix>& de,
                              std::vector<Matrix>& d2e) const {
  e = x;
  de.assign(n_deriv, Matrix(x.rows(), x.cols()));
  d2e.assign(n_deriv, Matrix(x.rows(), x.cols()));
  for (int k = 0; k < n_deriv; ++k) {
    for (std::size_t r = 0; r < x.rows(); ++r) de[k](r, k) = 1.0;
  }
}

FourierEncoding::FourierEncoding(std::size_t input_dim, std::size_t n_freq,
                                 double sigma, util::Rng& rng)
    : b_(input_dim, n_freq) {
  for (std::size_t i = 0; i < input_dim; ++i)
    for (std::size_t j = 0; j < n_freq; ++j) b_(i, j) = rng.normal(0.0, sigma);
}

FourierEncoding::FourierEncoding(Matrix frequencies)
    : b_(std::move(frequencies)) {
  if (b_.rows() == 0 || b_.cols() == 0)
    throw std::invalid_argument("FourierEncoding: empty frequency matrix");
}

std::size_t FourierEncoding::output_dim(std::size_t input_dim) const {
  if (input_dim != b_.rows())
    throw std::invalid_argument("FourierEncoding: input_dim mismatch");
  return input_dim + 2 * b_.cols();
}

void FourierEncoding::encode(const Matrix& x, int n_deriv, Matrix& e,
                             std::vector<Matrix>& de,
                             std::vector<Matrix>& d2e) const {
  if (x.cols() != b_.rows())
    throw std::invalid_argument("FourierEncoding: batch width mismatch");
  const std::size_t n = x.rows(), d = x.cols(), f = b_.cols();
  const std::size_t out = d + 2 * f;
  const Matrix phase = tensor::matmul(x, b_);  // n x f

  e = Matrix(n, out);
  de.assign(n_deriv, Matrix(n, out));
  d2e.assign(n_deriv, Matrix(n, out));

  for (std::size_t r = 0; r < n; ++r) {
    // Pass-through block.
    for (std::size_t c = 0; c < d; ++c) e(r, c) = x(r, c);
    for (std::size_t j = 0; j < f; ++j) {
      const double p = phase(r, j);
      e(r, d + j) = std::sin(p);
      e(r, d + f + j) = std::cos(p);
    }
  }
  for (int k = 0; k < n_deriv; ++k) {
    Matrix& dk = de[k];
    Matrix& hk = d2e[k];
    for (std::size_t r = 0; r < n; ++r) {
      dk(r, static_cast<std::size_t>(k)) = 1.0;
      for (std::size_t j = 0; j < f; ++j) {
        const double p = phase(r, j);
        const double bkj = b_(static_cast<std::size_t>(k), j);
        const double sp = std::sin(p), cp = std::cos(p);
        dk(r, d + j) = bkj * cp;        // d sin / dx_k
        dk(r, d + f + j) = -bkj * sp;   // d cos / dx_k
        hk(r, d + j) = -bkj * bkj * sp;
        hk(r, d + f + j) = -bkj * bkj * cp;
      }
    }
  }
}

}  // namespace sgm::nn
