#pragma once
// Fully-connected network (Eq. 2 of the paper) with tape-recorded forward
// passes that additionally propagate first and second derivatives of the
// outputs w.r.t. selected input dimensions.
//
// How second-order PDE terms are differentiated w.r.t. the weights: the
// extended forward pass carries, per input dimension k, the Jacobian column
// A_k = da/dx_k and the Hessian diagonal H_k = d2a/dx_k^2 through each layer
// using only tape ops (matmul, elementwise sigma/sigma'/sigma'', products).
// The chain rule per hidden layer (z = a W + b, a' = sigma(z)) is:
//   Z_k  = A_k W          Hz_k = H_k W
//   A'_k = sigma'(z) . Z_k
//   H'_k = sigma''(z) . Z_k^2 + sigma'(z) . Hz_k
// Because these are ordinary tape ops, a single reverse sweep yields
// d(loss)/d(theta) even when the loss involves u_xx, u_yy, etc.
//
// The recording uses the tape's fused ops: z is one affine node, the whole
// sigma/sigma'/sigma''(/sigma''' for backward) ladder is ONE activation
// sweep over z, and the A'_k / H'_k updates are single act_chain /
// act_curve nodes — so a hidden layer with n_deriv=2 costs 1 affine +
// 4 matmul + 1 activation + 4 fused elementwise nodes.

#include <memory>
#include <vector>

#include "nn/activation.hpp"
#include "nn/encoding.hpp"
#include "tensor/tape.hpp"
#include "util/rng.hpp"

namespace sgm::nn {

struct MlpConfig {
  std::size_t input_dim = 2;
  std::size_t output_dim = 1;
  std::size_t width = 64;
  std::size_t depth = 4;  ///< number of hidden layers
  const Activation* activation = &silu();
  /// Optional phi_E input encoding; null means identity.
  std::shared_ptr<const InputEncoding> encoding;
};

class Mlp {
 public:
  /// Xavier-uniform initialization from `rng`.
  Mlp(MlpConfig cfg, util::Rng& rng);

  const MlpConfig& config() const { return cfg_; }
  std::size_t num_parameters() const;

  /// Inference-only forward pass (no tape, no derivatives).
  tensor::Matrix forward(const tensor::Matrix& x) const;

  /// Pooled activations for forward_batched (capacity retained across
  /// calls, so the serving steady state allocates nothing).
  struct ForwardWorkspace {
    tensor::Matrix a, z;
    tensor::Matrix e;
    std::vector<tensor::Matrix> de, d2e;  ///< encoding scratch (unused)
  };

  /// Inference forward of batch `x` (n x input_dim) into `out`
  /// (n x output_dim), built on the blocked row-range GEMM kernels with
  /// optional row-parallelism over the shared thread pool. Each output row
  /// is computed exactly as forward() computes it — the GEMM kernels
  /// accumulate per element in a fixed reduction order regardless of tiling
  /// or row span — so the result is bitwise identical to forward() row by
  /// row, for any batch composition and any num_threads. This is the
  /// serving batcher's coalesced path and the contract test_serve pins.
  /// num_threads: 0 = SGM_NUM_THREADS env / hardware concurrency, 1 =
  /// inline serial.
  void forward_batched(const tensor::Matrix& x, tensor::Matrix& out,
                       ForwardWorkspace& ws, std::size_t num_threads = 1)
      const;

  /// Derivative propagation is carried in fixed-size per-dimension arrays;
  /// n_deriv beyond this throws (the PDE problems use at most 3 dims).
  static constexpr int kMaxDeriv = 8;

  /// Parameter VarIds after binding this network's weights onto a tape.
  struct Binding {
    std::vector<tensor::VarId> w;
    std::vector<tensor::VarId> b;
  };
  Binding bind(tensor::Tape& tape) const;

  /// Reuse-friendly overload: refills `binding` in place (vector capacity
  /// is retained, so rebinding a cleared tape every step allocates nothing).
  void bind(tensor::Tape& tape, Binding* binding) const;

  struct TapeOutputs {
    tensor::VarId y = tensor::kNoVar;       ///< n x output_dim
    std::vector<tensor::VarId> dy;          ///< dy[k]  = d y / d x_k
    std::vector<tensor::VarId> d2y;         ///< d2y[k] = d^2 y / d x_k^2
  };

  /// Records the forward pass of batch `x` (n x input_dim) on `tape`,
  /// propagating derivatives for the first `n_deriv` input dimensions
  /// (0 => plain forward). Parameter gradients flow through `binding`.
  TapeOutputs forward_on_tape(tensor::Tape& tape, const Binding& binding,
                              const tensor::Matrix& x, int n_deriv) const;

  /// Reuse-friendly overload writing into `out` (vectors reused in place).
  void forward_on_tape(tensor::Tape& tape, const Binding& binding,
                       const tensor::Matrix& x, int n_deriv,
                       TapeOutputs* out) const;

  /// Copies gradients of the bound parameters out of the tape after
  /// backward(); order matches parameters(). Missing grads come out zero.
  std::vector<tensor::Matrix> collect_grads(const tensor::Tape& tape,
                                            const Binding& binding) const;

  /// Reuse-friendly overload: resizes `grads` once and copy-assigns into
  /// its pooled matrices thereafter (no steady-state allocations).
  void collect_grads_into(const tensor::Tape& tape, const Binding& binding,
                          std::vector<tensor::Matrix>* grads) const;

  /// Mutable views of all parameters, weights then biases, layer-major.
  std::vector<tensor::Matrix*> parameters();
  std::vector<const tensor::Matrix*> parameters() const;

  /// Overwrite parameters (e.g. restoring a checkpoint); shapes must match.
  void set_parameters(const std::vector<tensor::Matrix>& params);

 private:
  std::size_t encoded_dim() const;

  MlpConfig cfg_;
  std::vector<tensor::Matrix> weights_;  ///< layer l: (d_{l-1} x d_l)
  std::vector<tensor::Matrix> biases_;   ///< layer l: (1 x d_l)
};

}  // namespace sgm::nn
