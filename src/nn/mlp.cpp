#include "nn/mlp.hpp"

#include <cmath>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace sgm::nn {

using tensor::Matrix;
using tensor::Tape;
using tensor::VarId;

Mlp::Mlp(MlpConfig cfg, util::Rng& rng) : cfg_(std::move(cfg)) {
  if (cfg_.depth == 0) throw std::invalid_argument("Mlp: depth must be >= 1");
  if (!cfg_.activation) throw std::invalid_argument("Mlp: null activation");
  std::vector<std::size_t> dims;
  dims.push_back(encoded_dim());
  for (std::size_t l = 0; l < cfg_.depth; ++l) dims.push_back(cfg_.width);
  dims.push_back(cfg_.output_dim);

  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    const std::size_t fan_in = dims[l], fan_out = dims[l + 1];
    const double bound = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
    Matrix w(fan_in, fan_out);
    for (std::size_t i = 0; i < w.size(); ++i)
      w.data()[i] = rng.uniform(-bound, bound);
    weights_.push_back(std::move(w));
    biases_.emplace_back(1, fan_out);
  }
}

std::size_t Mlp::encoded_dim() const {
  return cfg_.encoding ? cfg_.encoding->output_dim(cfg_.input_dim)
                       : cfg_.input_dim;
}

std::size_t Mlp::num_parameters() const {
  std::size_t n = 0;
  for (const auto& w : weights_) n += w.size();
  for (const auto& b : biases_) n += b.size();
  return n;
}

Matrix Mlp::forward(const Matrix& x) const {
  Matrix a;
  if (cfg_.encoding) {
    std::vector<Matrix> de, d2e;
    cfg_.encoding->encode(x, 0, a, de, d2e);
  } else {
    a = x;
  }
  const std::size_t n_layers = weights_.size();
  for (std::size_t l = 0; l < n_layers; ++l) {
    Matrix z = tensor::matmul(a, weights_[l]);
    for (std::size_t r = 0; r < z.rows(); ++r)
      for (std::size_t c = 0; c < z.cols(); ++c) z(r, c) += biases_[l](0, c);
    if (l + 1 < n_layers) {
      for (std::size_t i = 0; i < z.size(); ++i)
        z.data()[i] = cfg_.activation->eval(z.data()[i], 0);
    }
    a = std::move(z);
  }
  return a;
}

void Mlp::forward_batched(const Matrix& x, Matrix& out, ForwardWorkspace& ws,
                          std::size_t num_threads) const {
  if (x.cols() != cfg_.input_dim)
    throw std::invalid_argument("Mlp::forward_batched: input width mismatch");
  const std::size_t n = x.rows();
  const Matrix* src = &x;
  if (cfg_.encoding) {
    cfg_.encoding->encode(x, 0, ws.e, ws.de, ws.d2e);
    src = &ws.e;
  }
  const Activation& act = *cfg_.activation;
  const std::size_t n_layers = weights_.size();
  for (std::size_t l = 0; l < n_layers; ++l) {
    const bool last = (l + 1 == n_layers);
    const Matrix& w = weights_[l];
    const Matrix& b = biases_[l];
    // Ping-pong between the pooled activations; the last layer writes
    // straight into `out` (which must not alias `x`).
    Matrix& dst = last ? out : (src == &ws.a ? ws.z : ws.a);
    dst.resize(n, w.cols());
    const Matrix& in = *src;
    util::parallel_for_chunks(
        0, n, /*grain=*/32, num_threads,
        [&](std::size_t r0, std::size_t r1, std::size_t) {
          tensor::gemm_nn(in, w, dst, r0, r1, /*accumulate=*/false);
          for (std::size_t r = r0; r < r1; ++r) {
            double* row = dst.row(r);
            for (std::size_t c = 0; c < dst.cols(); ++c) row[c] += b(0, c);
            if (!last) {
              for (std::size_t c = 0; c < dst.cols(); ++c)
                row[c] = act.eval(row[c], 0);
            }
          }
        });
    src = &dst;
  }
}

Mlp::Binding Mlp::bind(Tape& tape) const {
  Binding binding;
  bind(tape, &binding);
  return binding;
}

void Mlp::bind(Tape& tape, Binding* binding) const {
  binding->w.clear();
  binding->b.clear();
  for (const auto& w : weights_) binding->w.push_back(tape.parameter(w));
  for (const auto& b : biases_) binding->b.push_back(tape.parameter(b));
}

Mlp::TapeOutputs Mlp::forward_on_tape(Tape& tape, const Binding& binding,
                                      const Matrix& x, int n_deriv) const {
  TapeOutputs out;
  forward_on_tape(tape, binding, x, n_deriv, &out);
  return out;
}

void Mlp::forward_on_tape(Tape& tape, const Binding& binding, const Matrix& x,
                          int n_deriv, TapeOutputs* out) const {
  if (x.cols() != cfg_.input_dim)
    throw std::invalid_argument("Mlp::forward_on_tape: input width mismatch");
  if (n_deriv < 0 || static_cast<std::size_t>(n_deriv) > cfg_.input_dim ||
      n_deriv > kMaxDeriv)
    throw std::invalid_argument("Mlp::forward_on_tape: bad n_deriv");

  // Encoded inputs and their spatial derivatives are constants on the tape.
  // The identity path writes them straight into the arena (no staging
  // matrices), which keeps the steady-state step allocation-free.
  VarId a = tensor::kNoVar;
  std::array<VarId, kMaxDeriv> ak{}, hk{};
  if (!cfg_.encoding) {
    a = tape.constant(x);
    for (int k = 0; k < n_deriv; ++k) {
      ak[k] = tape.constant_uninit(x.rows(), x.cols());
      Matrix& dv = tape.mutable_value(ak[k]);
      dv.set_zero();
      for (std::size_t r = 0; r < dv.rows(); ++r)
        dv(r, static_cast<std::size_t>(k)) = 1.0;
      hk[k] = tape.constant_uninit(x.rows(), x.cols());
      tape.mutable_value(hk[k]).set_zero();
    }
  } else {
    Matrix e;
    std::vector<Matrix> de, d2e;
    cfg_.encoding->encode(x, n_deriv, e, de, d2e);
    a = tape.constant(e);
    for (int k = 0; k < n_deriv; ++k) {
      ak[k] = tape.constant(de[k]);
      hk[k] = tape.constant(d2e[k]);
    }
  }

  const Activation& act = *cfg_.activation;
  const std::size_t n_layers = weights_.size();
  for (std::size_t l = 0; l < n_layers; ++l) {
    const bool last = (l + 1 == n_layers);
    const VarId z = tensor::affine(tape, a, binding.w[l], binding.b[l]);
    std::array<VarId, kMaxDeriv> zk{}, hzk{};
    for (int k = 0; k < n_deriv; ++k) {
      zk[k] = tensor::matmul(tape, ak[k], binding.w[l]);
      hzk[k] = tensor::matmul(tape, hk[k], binding.w[l]);
    }
    if (last) {
      a = z;
      ak = zk;
      hk = hzk;
    } else {
      // One fused sweep gives sigma and every derivative order the layer
      // update and its backward need (3 when propagating derivatives).
      const VarId s =
          tensor::activation(tape, z, act, /*orders=*/n_deriv > 0 ? 3 : 1);
      a = s;
      for (int k = 0; k < n_deriv; ++k) {
        hk[k] = tensor::act_curve(tape, s, zk[k], hzk[k]);
        ak[k] = tensor::act_chain(tape, s, zk[k]);
      }
    }
  }

  out->y = a;
  out->dy.clear();
  out->d2y.clear();
  for (int k = 0; k < n_deriv; ++k) {
    out->dy.push_back(ak[k]);
    out->d2y.push_back(hk[k]);
  }
}

std::vector<Matrix> Mlp::collect_grads(const Tape& tape,
                                       const Binding& binding) const {
  std::vector<Matrix> grads;
  collect_grads_into(tape, binding, &grads);
  return grads;
}

void Mlp::collect_grads_into(const Tape& tape, const Binding& binding,
                             std::vector<Matrix>* grads) const {
  grads->resize(weights_.size() + biases_.size());
  std::size_t idx = 0;
  auto take = [&](VarId id, const Matrix& shape_like) {
    const Matrix& g = tape.grad(id);
    Matrix& dst = (*grads)[idx++];
    if (g.empty()) {
      dst.resize(shape_like.rows(), shape_like.cols());
      dst.set_zero();
    } else {
      dst = g;  // copy-assign reuses the pooled buffer
    }
  };
  for (std::size_t l = 0; l < weights_.size(); ++l)
    take(binding.w[l], weights_[l]);
  for (std::size_t l = 0; l < biases_.size(); ++l)
    take(binding.b[l], biases_[l]);
}

std::vector<Matrix*> Mlp::parameters() {
  std::vector<Matrix*> p;
  for (auto& w : weights_) p.push_back(&w);
  for (auto& b : biases_) p.push_back(&b);
  return p;
}

std::vector<const Matrix*> Mlp::parameters() const {
  std::vector<const Matrix*> p;
  for (const auto& w : weights_) p.push_back(&w);
  for (const auto& b : biases_) p.push_back(&b);
  return p;
}

void Mlp::set_parameters(const std::vector<Matrix>& params) {
  auto mine = parameters();
  if (params.size() != mine.size())
    throw std::invalid_argument("Mlp::set_parameters: count mismatch");
  for (std::size_t i = 0; i < mine.size(); ++i) {
    if (!mine[i]->same_shape(params[i]))
      throw std::invalid_argument("Mlp::set_parameters: shape mismatch");
    *mine[i] = params[i];
  }
}

}  // namespace sgm::nn
