#include "nn/mlp.hpp"

#include <cmath>
#include <stdexcept>

namespace sgm::nn {

using tensor::Matrix;
using tensor::Tape;
using tensor::VarId;

Mlp::Mlp(MlpConfig cfg, util::Rng& rng) : cfg_(std::move(cfg)) {
  if (cfg_.depth == 0) throw std::invalid_argument("Mlp: depth must be >= 1");
  if (!cfg_.activation) throw std::invalid_argument("Mlp: null activation");
  std::vector<std::size_t> dims;
  dims.push_back(encoded_dim());
  for (std::size_t l = 0; l < cfg_.depth; ++l) dims.push_back(cfg_.width);
  dims.push_back(cfg_.output_dim);

  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    const std::size_t fan_in = dims[l], fan_out = dims[l + 1];
    const double bound = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
    Matrix w(fan_in, fan_out);
    for (std::size_t i = 0; i < w.size(); ++i)
      w.data()[i] = rng.uniform(-bound, bound);
    weights_.push_back(std::move(w));
    biases_.emplace_back(1, fan_out);
  }
}

std::size_t Mlp::encoded_dim() const {
  return cfg_.encoding ? cfg_.encoding->output_dim(cfg_.input_dim)
                       : cfg_.input_dim;
}

std::size_t Mlp::num_parameters() const {
  std::size_t n = 0;
  for (const auto& w : weights_) n += w.size();
  for (const auto& b : biases_) n += b.size();
  return n;
}

Matrix Mlp::forward(const Matrix& x) const {
  Matrix a;
  if (cfg_.encoding) {
    std::vector<Matrix> de, d2e;
    cfg_.encoding->encode(x, 0, a, de, d2e);
  } else {
    a = x;
  }
  const std::size_t n_layers = weights_.size();
  for (std::size_t l = 0; l < n_layers; ++l) {
    Matrix z = tensor::matmul(a, weights_[l]);
    for (std::size_t r = 0; r < z.rows(); ++r)
      for (std::size_t c = 0; c < z.cols(); ++c) z(r, c) += biases_[l](0, c);
    if (l + 1 < n_layers) {
      for (std::size_t i = 0; i < z.size(); ++i)
        z.data()[i] = cfg_.activation->eval(z.data()[i], 0);
    }
    a = std::move(z);
  }
  return a;
}

Mlp::Binding Mlp::bind(Tape& tape) const {
  Binding binding;
  binding.w.reserve(weights_.size());
  binding.b.reserve(biases_.size());
  for (const auto& w : weights_) binding.w.push_back(tape.parameter(w));
  for (const auto& b : biases_) binding.b.push_back(tape.parameter(b));
  return binding;
}

Mlp::TapeOutputs Mlp::forward_on_tape(Tape& tape, const Binding& binding,
                                      const Matrix& x, int n_deriv) const {
  if (x.cols() != cfg_.input_dim)
    throw std::invalid_argument("Mlp::forward_on_tape: input width mismatch");
  if (n_deriv < 0 || static_cast<std::size_t>(n_deriv) > cfg_.input_dim)
    throw std::invalid_argument("Mlp::forward_on_tape: bad n_deriv");

  // Encoded inputs and their spatial derivatives are constants on the tape.
  Matrix e;
  std::vector<Matrix> de, d2e;
  if (cfg_.encoding) {
    cfg_.encoding->encode(x, n_deriv, e, de, d2e);
  } else {
    IdentityEncoding id;
    id.encode(x, n_deriv, e, de, d2e);
  }

  VarId a = tape.constant(std::move(e));
  std::vector<VarId> ak(n_deriv), hk(n_deriv);
  for (int k = 0; k < n_deriv; ++k) {
    ak[k] = tape.constant(std::move(de[k]));
    hk[k] = tape.constant(std::move(d2e[k]));
  }

  const Activation& act = *cfg_.activation;
  const std::size_t n_layers = weights_.size();
  for (std::size_t l = 0; l < n_layers; ++l) {
    const bool last = (l + 1 == n_layers);
    VarId z = tensor::add_rowvec(tape, tensor::matmul(tape, a, binding.w[l]),
                                 binding.b[l]);
    std::vector<VarId> zk(n_deriv), hzk(n_deriv);
    for (int k = 0; k < n_deriv; ++k) {
      zk[k] = tensor::matmul(tape, ak[k], binding.w[l]);
      hzk[k] = tensor::matmul(tape, hk[k], binding.w[l]);
    }
    if (last) {
      a = z;
      ak = std::move(zk);
      hk = std::move(hzk);
    } else {
      a = tensor::apply(tape, z, act, 0);
      if (n_deriv > 0) {
        const VarId s1 = tensor::apply(tape, z, act, 1);
        const VarId s2 = tensor::apply(tape, z, act, 2);
        for (int k = 0; k < n_deriv; ++k) {
          const VarId first = tensor::mul(tape, s1, zk[k]);
          const VarId curv = tensor::mul(tape, s2, tensor::square(tape, zk[k]));
          const VarId lin = tensor::mul(tape, s1, hzk[k]);
          hk[k] = tensor::add(tape, curv, lin);
          ak[k] = first;
        }
      }
    }
  }

  TapeOutputs out;
  out.y = a;
  out.dy = std::move(ak);
  out.d2y = std::move(hk);
  return out;
}

std::vector<Matrix> Mlp::collect_grads(const Tape& tape,
                                       const Binding& binding) const {
  std::vector<Matrix> grads;
  grads.reserve(weights_.size() + biases_.size());
  auto take = [&](VarId id, const Matrix& shape_like) {
    const Matrix& g = tape.grad(id);
    grads.push_back(g.empty() ? Matrix(shape_like.rows(), shape_like.cols())
                              : g);
  };
  for (std::size_t l = 0; l < weights_.size(); ++l)
    take(binding.w[l], weights_[l]);
  for (std::size_t l = 0; l < biases_.size(); ++l) take(binding.b[l], biases_[l]);
  return grads;
}

std::vector<Matrix*> Mlp::parameters() {
  std::vector<Matrix*> p;
  for (auto& w : weights_) p.push_back(&w);
  for (auto& b : biases_) p.push_back(&b);
  return p;
}

std::vector<const Matrix*> Mlp::parameters() const {
  std::vector<const Matrix*> p;
  for (const auto& w : weights_) p.push_back(&w);
  for (const auto& b : biases_) p.push_back(&b);
  return p;
}

void Mlp::set_parameters(const std::vector<Matrix>& params) {
  auto mine = parameters();
  if (params.size() != mine.size())
    throw std::invalid_argument("Mlp::set_parameters: count mismatch");
  for (std::size_t i = 0; i < mine.size(); ++i) {
    if (!mine[i]->same_shape(params[i]))
      throw std::invalid_argument("Mlp::set_parameters: shape mismatch");
    *mine[i] = params[i];
  }
}

}  // namespace sgm::nn
