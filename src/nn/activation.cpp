#include "nn/activation.hpp"

#include <cmath>
#include <stdexcept>

namespace sgm::nn {

namespace {
inline double logistic(double x) {
  // Numerically stable for large |x|.
  if (x >= 0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}
}  // namespace

double Silu::eval(double x, int order) const {
  const double s = logistic(x);
  const double s1 = s * (1.0 - s);          // sigma'
  const double s2 = s1 * (1.0 - 2.0 * s);   // sigma''
  switch (order) {
    case 0: return x * s;
    case 1: return s + x * s1;
    case 2: return 2.0 * s1 + x * s2;
    case 3: {
      const double s3 = s2 * (1.0 - 2.0 * s) - 2.0 * s1 * s1;  // sigma'''
      return 3.0 * s2 + x * s3;
    }
    default:
      throw std::invalid_argument("Silu: derivative order > 3 not supported");
  }
}

void Silu::eval_orders(double x, int max_order, double* out) const {
  // One logistic() for the whole derivative ladder — this is the fused
  // activation sweep the tape's kActivation node performs per element.
  const double s = logistic(x);
  const double s1 = s * (1.0 - s);
  const double s2 = s1 * (1.0 - 2.0 * s);
  out[0] = x * s;
  if (max_order >= 1) out[1] = s + x * s1;
  if (max_order >= 2) out[2] = 2.0 * s1 + x * s2;
  if (max_order >= 3) {
    const double s3 = s2 * (1.0 - 2.0 * s) - 2.0 * s1 * s1;
    out[3] = 3.0 * s2 + x * s3;
  }
}

double Tanh::eval(double x, int order) const {
  const double f = std::tanh(x);
  const double g = 1.0 - f * f;  // f'
  switch (order) {
    case 0: return f;
    case 1: return g;
    case 2: return -2.0 * f * g;
    case 3: return -2.0 * g * (1.0 - 3.0 * f * f);
    default:
      throw std::invalid_argument("Tanh: derivative order > 3 not supported");
  }
}

void Tanh::eval_orders(double x, int max_order, double* out) const {
  const double f = std::tanh(x);
  const double g = 1.0 - f * f;
  out[0] = f;
  if (max_order >= 1) out[1] = g;
  if (max_order >= 2) out[2] = -2.0 * f * g;
  if (max_order >= 3) out[3] = -2.0 * g * (1.0 - 3.0 * f * f);
}

double Sigmoid::eval(double x, int order) const {
  const double s = logistic(x);
  const double s1 = s * (1.0 - s);
  switch (order) {
    case 0: return s;
    case 1: return s1;
    case 2: return s1 * (1.0 - 2.0 * s);
    case 3: return s1 * (1.0 - 2.0 * s) * (1.0 - 2.0 * s) - 2.0 * s1 * s1;
    default:
      throw std::invalid_argument(
          "Sigmoid: derivative order > 3 not supported");
  }
}

void Sigmoid::eval_orders(double x, int max_order, double* out) const {
  const double s = logistic(x);
  const double s1 = s * (1.0 - s);
  out[0] = s;
  if (max_order >= 1) out[1] = s1;
  if (max_order >= 2) out[2] = s1 * (1.0 - 2.0 * s);
  if (max_order >= 3)
    out[3] = s1 * (1.0 - 2.0 * s) * (1.0 - 2.0 * s) - 2.0 * s1 * s1;
}

double Sine::eval(double x, int order) const {
  const double w = w0_;
  const double a = w * x;
  switch (order) {
    case 0: return std::sin(a);
    case 1: return w * std::cos(a);
    case 2: return -w * w * std::sin(a);
    case 3: return -w * w * w * std::cos(a);
    default:
      throw std::invalid_argument("Sine: derivative order > 3 not supported");
  }
}

void Sine::eval_orders(double x, int max_order, double* out) const {
  const double w = w0_;
  const double sn = std::sin(w * x), cs = std::cos(w * x);
  out[0] = sn;
  if (max_order >= 1) out[1] = w * cs;
  if (max_order >= 2) out[2] = -w * w * sn;
  if (max_order >= 3) out[3] = -w * w * w * cs;
}

double Identity::eval(double x, int order) const {
  switch (order) {
    case 0: return x;
    case 1: return 1.0;
    default: return 0.0;
  }
}

const Activation& silu() {
  static const Silu a;
  return a;
}
const Activation& tanh_act() {
  static const Tanh a;
  return a;
}
const Activation& sigmoid_act() {
  static const Sigmoid a;
  return a;
}
const Activation& sine_act() {
  static const Sine a;
  return a;
}
const Activation& identity_act() {
  static const Identity a;
  return a;
}

const Activation& activation_by_name(const std::string& name) {
  if (name == "silu") return silu();
  if (name == "tanh") return tanh_act();
  if (name == "sigmoid") return sigmoid_act();
  if (name == "sine") return sine_act();
  if (name == "identity") return identity_act();
  throw std::invalid_argument("unknown activation: " + name);
}

}  // namespace sgm::nn
