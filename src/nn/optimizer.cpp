#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace sgm::nn {

using tensor::Matrix;

namespace {
void check_step_args(const std::vector<Matrix*>& params,
                     const std::vector<Matrix>& grads) {
  if (params.size() != grads.size())
    throw std::invalid_argument("Optimizer::step: param/grad count mismatch");
  for (std::size_t i = 0; i < params.size(); ++i)
    if (!params[i]->same_shape(grads[i]))
      throw std::invalid_argument("Optimizer::step: shape mismatch at " +
                                  std::to_string(i));
}
}  // namespace

Sgd::Sgd(double lr, double momentum) : lr_(lr), momentum_(momentum) {}

void Sgd::step(const std::vector<Matrix*>& params,
               const std::vector<Matrix>& grads) {
  check_step_args(params, grads);
  if (velocity_.empty() && momentum_ != 0.0) {
    for (const auto* p : params) velocity_.emplace_back(p->rows(), p->cols());
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (momentum_ != 0.0) {
      Matrix& vel = velocity_[i];
      vel.scale(momentum_);
      vel.axpy(1.0, grads[i]);
      params[i]->axpy(-lr_, vel);
    } else {
      params[i]->axpy(-lr_, grads[i]);
    }
  }
  ++iterations_;
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void Adam::step(const std::vector<Matrix*>& params,
                const std::vector<Matrix>& grads) {
  check_step_args(params, grads);
  if (m_.empty()) {
    for (const auto* p : params) {
      m_.emplace_back(p->rows(), p->cols());
      v_.emplace_back(p->rows(), p->cols());
    }
  }
  ++iterations_;
  // Running beta powers replace the per-step std::pow(beta, t) calls.
  beta1_pow_ *= beta1_;
  beta2_pow_ *= beta2_;
  const double bc1 = 1.0 - beta1_pow_;
  const double bc2 = 1.0 - beta2_pow_;
  const double one_minus_b1 = 1.0 - beta1_;
  const double one_minus_b2 = 1.0 - beta2_;
  for (std::size_t i = 0; i < params.size(); ++i) {
    double* m = m_[i].data();
    double* v = v_[i].data();
    double* p = params[i]->data();
    const double* g = grads[i].data();
    const std::size_t n = params[i]->size();
    for (std::size_t j = 0; j < n; ++j) {
      const double gj = g[j];
      m[j] = beta1_ * m[j] + one_minus_b1 * gj;
      v[j] = beta2_ * v[j] + one_minus_b2 * gj * gj;
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      p[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

AdamState Adam::state() const {
  AdamState st;
  st.iterations = iterations_;
  st.beta1_pow = beta1_pow_;
  st.beta2_pow = beta2_pow_;
  st.m = m_;
  st.v = v_;
  return st;
}

void Adam::set_state(AdamState st) {
  if (st.m.size() != st.v.size())
    throw std::invalid_argument("Adam::set_state: m/v count mismatch");
  iterations_ = st.iterations;
  beta1_pow_ = st.beta1_pow;
  beta2_pow_ = st.beta2_pow;
  m_ = std::move(st.m);
  v_ = std::move(st.v);
}

double ExponentialDecaySchedule::lr(std::uint64_t step) const {
  if (decay_steps_ == 0) return lr0_;
  const double e =
      static_cast<double>(step) / static_cast<double>(decay_steps_);
  return lr0_ * std::pow(gamma_, e);
}

}  // namespace sgm::nn
