#pragma once
// Input encodings (the phi_E layer of Eq. 2 in the paper).
//
// Encodings are constant w.r.t. the trainable parameters, so their values
// and spatial derivatives are computed eagerly as plain matrices and enter
// the tape as constants. Each encoding reports value E, per-dimension
// Jacobian columns dE[k] = dE/dx_k and Hessian diagonals d2E[k] = d2E/dx_k^2
// for the first `n_deriv` input dimensions.

#include <memory>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace sgm::nn {

class InputEncoding {
 public:
  virtual ~InputEncoding() = default;

  /// Width of the encoded feature vector for a given raw input width.
  virtual std::size_t output_dim(std::size_t input_dim) const = 0;

  /// Encode batch X (n x input_dim). Fills E (n x output_dim) and, for each
  /// k < n_deriv, dE[k] and d2E[k] with the same shape as E.
  virtual void encode(const tensor::Matrix& x, int n_deriv, tensor::Matrix& e,
                      std::vector<tensor::Matrix>& de,
                      std::vector<tensor::Matrix>& d2e) const = 0;
};

/// Pass-through (no encoding).
class IdentityEncoding final : public InputEncoding {
 public:
  std::size_t output_dim(std::size_t input_dim) const override {
    return input_dim;
  }
  void encode(const tensor::Matrix& x, int n_deriv, tensor::Matrix& e,
              std::vector<tensor::Matrix>& de,
              std::vector<tensor::Matrix>& d2e) const override;
};

/// Fourier features: E = [x, sin(x B), cos(x B)] with a fixed frequency
/// matrix B (input_dim x n_freq). Modulus enables these by default for CFD
/// examples; they sharpen the network's ability to fit boundary layers.
class FourierEncoding final : public InputEncoding {
 public:
  /// Frequencies drawn as N(0, sigma^2); fixed thereafter (not trainable).
  FourierEncoding(std::size_t input_dim, std::size_t n_freq, double sigma,
                  util::Rng& rng);

  /// Explicit frequency matrix (input_dim x n_freq).
  explicit FourierEncoding(tensor::Matrix frequencies);

  std::size_t output_dim(std::size_t input_dim) const override;
  void encode(const tensor::Matrix& x, int n_deriv, tensor::Matrix& e,
              std::vector<tensor::Matrix>& de,
              std::vector<tensor::Matrix>& d2e) const override;

  const tensor::Matrix& frequencies() const { return b_; }

 private:
  tensor::Matrix b_;  // input_dim x n_freq
};

}  // namespace sgm::nn
