#include "nn/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace sgm::nn {

namespace {
constexpr const char* kMagic = "sgm-mlp";
constexpr int kVersion = 1;
}  // namespace

void save_parameters(const Mlp& net, std::ostream& out) {
  const auto params = net.parameters();
  out << kMagic << ' ' << kVersion << ' ' << params.size() << '\n';
  out << std::setprecision(17);
  for (const auto* p : params) {
    out << p->rows() << ' ' << p->cols();
    for (std::size_t i = 0; i < p->size(); ++i) out << ' ' << p->data()[i];
    out << '\n';
  }
  if (!out) throw std::runtime_error("save_parameters: stream write failed");
}

void load_parameters(Mlp& net, std::istream& in) {
  std::string magic;
  int version = 0;
  std::size_t count = 0;
  if (!(in >> magic >> version >> count) || magic != kMagic)
    throw std::runtime_error("load_parameters: not an sgm-mlp checkpoint");
  if (version != kVersion)
    throw std::runtime_error("load_parameters: unsupported version " +
                             std::to_string(version));
  auto params = net.parameters();
  if (count != params.size())
    throw std::runtime_error(
        "load_parameters: tensor count mismatch (checkpoint " +
        std::to_string(count) + ", network " +
        std::to_string(params.size()) + ")");

  std::vector<tensor::Matrix> loaded;
  loaded.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    std::size_t rows = 0, cols = 0;
    if (!(in >> rows >> cols))
      throw std::runtime_error("load_parameters: truncated tensor header");
    if (rows != params[t]->rows() || cols != params[t]->cols())
      throw std::runtime_error("load_parameters: shape mismatch at tensor " +
                               std::to_string(t));
    tensor::Matrix m(rows, cols);
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (!(in >> m.data()[i]))
        throw std::runtime_error("load_parameters: truncated tensor data");
    }
    loaded.push_back(std::move(m));
  }
  net.set_parameters(loaded);
}

void save_checkpoint(const Mlp& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);
  save_parameters(net, out);
}

void load_checkpoint(Mlp& net, const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  load_parameters(net, in);
}

}  // namespace sgm::nn
