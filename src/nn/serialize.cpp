#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "nn/activation.hpp"
#include "nn/encoding.hpp"
#include "util/binio.hpp"
#include "util/fs.hpp"
#include "util/rng.hpp"

namespace sgm::nn {

namespace {

using util::binio::ByteReader;
using util::binio::fnv1a64;
using util::binio::put_f64;
using util::binio::put_str;
using util::binio::put_u32;
using util::binio::put_u64;

constexpr char kMagicV2[8] = {'S', 'G', 'M', 'C', 'K', 'P', 'T', '2'};
constexpr const char* kMagicV1 = "sgm-mlp";  // legacy text format

constexpr std::uint32_t kEncodingNone = 0;
constexpr std::uint32_t kEncodingFourier = 1;

void put_matrix(std::string& b, const tensor::Matrix& m) {
  put_u64(b, m.rows());
  put_u64(b, m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) put_f64(b, m.data()[i]);
}

tensor::Matrix read_matrix(ByteReader& r) {
  const std::uint64_t rows = r.u64();
  const std::uint64_t cols = r.u64();
  if (rows > (1ull << 24) || cols > (1ull << 24) ||
      rows * cols > r.remaining() / 8)
    throw std::runtime_error("checkpoint: implausible tensor shape " +
                             std::to_string(rows) + "x" +
                             std::to_string(cols));
  tensor::Matrix m(static_cast<std::size_t>(rows),
                   static_cast<std::size_t>(cols));
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = r.f64();
  return m;
}

/// Serialized architecture + weights + meta: the checksummed body.
std::string encode_body(const Mlp& net, const CheckpointMeta& meta) {
  const MlpConfig& cfg = net.config();
  std::string body;
  put_str(body, meta.scenario);
  put_u64(body, meta.model_version);

  put_u64(body, cfg.input_dim);
  put_u64(body, cfg.output_dim);
  put_u64(body, cfg.width);
  put_u64(body, cfg.depth);
  put_str(body, cfg.activation->name());
  if (!cfg.encoding ||
      dynamic_cast<const IdentityEncoding*>(cfg.encoding.get())) {
    put_u32(body, kEncodingNone);
  } else if (const auto* fourier =
                 dynamic_cast<const FourierEncoding*>(cfg.encoding.get())) {
    put_u32(body, kEncodingFourier);
    put_matrix(body, fourier->frequencies());
  } else {
    throw std::runtime_error(
        "save_model: unsupported input encoding (only identity and Fourier "
        "encodings are serializable)");
  }

  const auto params = net.parameters();
  put_u64(body, params.size());
  for (const auto* p : params) put_matrix(body, *p);
  return body;
}

struct DecodedBody {
  CheckpointInfo info;
  std::vector<tensor::Matrix> tensors;
};

DecodedBody decode_body(const char* data, std::size_t n) {
  ByteReader r(data, n);
  DecodedBody out;
  out.info.meta.scenario = r.str();
  out.info.meta.model_version = r.u64();

  MlpConfig& cfg = out.info.config;
  cfg.input_dim = static_cast<std::size_t>(r.u64());
  cfg.output_dim = static_cast<std::size_t>(r.u64());
  cfg.width = static_cast<std::size_t>(r.u64());
  cfg.depth = static_cast<std::size_t>(r.u64());
  cfg.activation = &activation_by_name(r.str());
  const std::uint32_t enc_kind = r.u32();
  if (enc_kind == kEncodingFourier) {
    cfg.encoding = std::make_shared<FourierEncoding>(read_matrix(r));
  } else if (enc_kind != kEncodingNone) {
    throw std::runtime_error("checkpoint: unknown encoding kind " +
                             std::to_string(enc_kind));
  }

  const std::uint64_t count = r.u64();
  out.tensors.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t t = 0; t < count; ++t)
    out.tensors.push_back(read_matrix(r));
  if (r.remaining() != 0)
    throw std::runtime_error("checkpoint: trailing bytes after tensors");
  return out;
}

std::string slurp(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw std::runtime_error("checkpoint: stream read failed");
  return buf.str();
}

bool looks_like_v2(const std::string& raw) {
  return raw.size() >= sizeof(kMagicV2) &&
         std::memcmp(raw.data(), kMagicV2, sizeof(kMagicV2)) == 0;
}

/// Verifies magic/version/checksum and returns the body slice.
std::pair<const char*, std::size_t> checked_body(const std::string& raw) {
  constexpr std::size_t kPrefix = sizeof(kMagicV2) + 4;  // magic + version
  constexpr std::size_t kTrailer = 8;                    // checksum
  if (raw.size() < kPrefix + kTrailer)
    throw std::runtime_error("checkpoint: truncated header");
  ByteReader version_reader(raw.data() + sizeof(kMagicV2), 4);
  const std::uint32_t version = version_reader.u32();
  if (version != kCheckpointFormatVersion)
    throw std::runtime_error("checkpoint: unsupported format version " +
                             std::to_string(version) + " (this build reads " +
                             std::to_string(kCheckpointFormatVersion) +
                             " and the legacy v1 text format)");
  const char* body = raw.data() + kPrefix;
  const std::size_t body_size = raw.size() - kPrefix - kTrailer;
  ByteReader trailer_reader(raw.data() + raw.size() - kTrailer, kTrailer);
  const std::uint64_t stored = trailer_reader.u64();
  if (fnv1a64(body, body_size) != stored)
    throw std::runtime_error(
        "checkpoint: checksum mismatch (truncated or corrupt file)");
  return {body, body_size};
}

/// magic + format version + body + checksum trailer: the full file image.
std::string v2_file_bytes(const std::string& body) {
  std::string file;
  file.reserve(sizeof(kMagicV2) + 4 + body.size() + 8);
  file.append(kMagicV2, sizeof(kMagicV2));
  put_u32(file, kCheckpointFormatVersion);
  file.append(body);
  put_u64(file, fnv1a64(body.data(), body.size()));
  return file;
}

void write_v2(std::ostream& out, const std::string& body) {
  const std::string file = v2_file_bytes(body);
  out.write(file.data(), static_cast<std::streamsize>(file.size()));
  // flush() forces buffered bytes down to the sink so deferred write
  // errors (full disk) surface here, not silently at destruction.
  out.flush();
  if (!out) throw std::runtime_error("checkpoint: stream write failed");
}

/// Legacy v1 text parser ("sgm-mlp" header). Parameters only — v1 carries
/// no architecture, so shapes come from (and are checked against) `net`.
void load_parameters_v1(Mlp& net, std::istream& in) {
  std::string magic;
  int version = 0;
  std::size_t count = 0;
  if (!(in >> magic >> version >> count) || magic != kMagicV1)
    throw std::runtime_error("load_parameters: not an sgm checkpoint");
  if (version != 1)
    throw std::runtime_error("load_parameters: unsupported text version " +
                             std::to_string(version));
  auto params = net.parameters();
  if (count != params.size())
    throw std::runtime_error(
        "load_parameters: tensor count mismatch (checkpoint " +
        std::to_string(count) + ", network " +
        std::to_string(params.size()) + ")");

  std::vector<tensor::Matrix> loaded;
  loaded.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    std::size_t rows = 0, cols = 0;
    if (!(in >> rows >> cols))
      throw std::runtime_error("load_parameters: truncated tensor header");
    if (rows != params[t]->rows() || cols != params[t]->cols())
      throw std::runtime_error("load_parameters: shape mismatch at tensor " +
                               std::to_string(t));
    tensor::Matrix m(rows, cols);
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (!(in >> m.data()[i]))
        throw std::runtime_error("load_parameters: truncated tensor data");
    }
    loaded.push_back(std::move(m));
  }
  net.set_parameters(loaded);
}

}  // namespace

// ---------------------------------------------------------------------------
// Parameter-only API
// ---------------------------------------------------------------------------

void save_parameters(const Mlp& net, std::ostream& out) {
  write_v2(out, encode_body(net, CheckpointMeta{}));
}

void load_parameters(Mlp& net, std::istream& in) {
  const std::string raw = slurp(in);
  if (!looks_like_v2(raw)) {
    std::istringstream text(raw);
    load_parameters_v1(net, text);
    return;
  }
  const auto [body, body_size] = checked_body(raw);
  DecodedBody decoded = decode_body(body, body_size);
  const auto params = net.parameters();
  if (decoded.tensors.size() != params.size())
    throw std::runtime_error(
        "load_parameters: tensor count mismatch (checkpoint " +
        std::to_string(decoded.tensors.size()) + ", network " +
        std::to_string(params.size()) + ")");
  for (std::size_t t = 0; t < params.size(); ++t) {
    if (!params[t]->same_shape(decoded.tensors[t]))
      throw std::runtime_error("load_parameters: shape mismatch at tensor " +
                               std::to_string(t));
  }
  net.set_parameters(decoded.tensors);
}

void save_checkpoint(const Mlp& net, const std::string& path) {
  util::write_file_durable(path,
                           v2_file_bytes(encode_body(net, CheckpointMeta{})));
}

void load_checkpoint(Mlp& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  load_parameters(net, in);
}

// ---------------------------------------------------------------------------
// Full-model API
// ---------------------------------------------------------------------------

void save_model(const Mlp& net, std::ostream& out,
                const CheckpointMeta& meta) {
  write_v2(out, encode_body(net, meta));
}

void save_model_file(const Mlp& net, const std::string& path,
                     const CheckpointMeta& meta) {
  util::write_file_durable(path, v2_file_bytes(encode_body(net, meta)));
}

LoadedModel load_model(std::istream& in) {
  const std::string raw = slurp(in);
  if (!looks_like_v2(raw)) {
    if (raw.compare(0, std::strlen(kMagicV1), kMagicV1) == 0)
      throw std::runtime_error(
          "load_model: legacy v1 text checkpoints carry no architecture; "
          "load them with load_parameters() into a caller-built net");
    throw std::runtime_error("load_model: not an sgm checkpoint");
  }
  const auto [body, body_size] = checked_body(raw);
  DecodedBody decoded = decode_body(body, body_size);

  LoadedModel out;
  out.info = decoded.info;
  out.info.checksum = fnv1a64(body, body_size);
  util::Rng init_rng(0);  // initialization is immediately overwritten
  out.model = std::make_unique<Mlp>(out.info.config, init_rng);
  out.model->set_parameters(decoded.tensors);
  return out;
}

LoadedModel load_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_model_file: cannot open " + path);
  return load_model(in);
}

CheckpointInfo read_model_info(const std::string& path) {
  return load_model_file(path).info;
}

}  // namespace sgm::nn
