#include "cfd/ldc_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace sgm::cfd {

using tensor::Matrix;

double LdcSolution::sample(const Matrix& field, double x, double y) const {
  const double cx = std::clamp(x, 0.0, 1.0) / h;
  const double cy = std::clamp(y, 0.0, 1.0) / h;
  const int i0 = std::min(static_cast<int>(cx), n - 2);
  const int j0 = std::min(static_cast<int>(cy), n - 2);
  const double fx = cx - i0, fy = cy - j0;
  // Row index is y, column index is x.
  const double f00 = field(j0, i0), f10 = field(j0, i0 + 1);
  const double f01 = field(j0 + 1, i0), f11 = field(j0 + 1, i0 + 1);
  return f00 * (1 - fx) * (1 - fy) + f10 * fx * (1 - fy) +
         f01 * (1 - fx) * fy + f11 * fx * fy;
}

LdcSolution solve_lid_driven_cavity(const LdcOptions& opt) {
  if (opt.n < 8) throw std::invalid_argument("LDC: grid too small");
  if (opt.reynolds <= 0) throw std::invalid_argument("LDC: Re must be > 0");
  const int n = opt.n;
  const double h = 1.0 / (n - 1);
  const double inv_re_h2 = 1.0 / (opt.reynolds * h * h);

  LdcSolution sol;
  sol.n = n;
  sol.h = h;
  sol.u = Matrix(n, n);
  sol.v = Matrix(n, n);
  sol.psi = Matrix(n, n);
  sol.omega = Matrix(n, n);

  Matrix& u = sol.u;
  Matrix& v = sol.v;
  Matrix& psi = sol.psi;
  Matrix& w = sol.omega;
  for (int i = 0; i < n; ++i) u(n - 1, i) = opt.lid_velocity;

  for (int outer = 0; outer < opt.max_iterations; ++outer) {
    // --- Streamfunction Poisson solve: nabla^2 psi = -omega (SOR) ---
    for (int sweep = 0; sweep < opt.psi_sweeps; ++sweep) {
      for (int j = 1; j < n - 1; ++j) {
        for (int i = 1; i < n - 1; ++i) {
          const double gs = 0.25 * (psi(j, i + 1) + psi(j, i - 1) +
                                    psi(j + 1, i) + psi(j - 1, i) +
                                    h * h * w(j, i));
          psi(j, i) += opt.psi_relaxation * (gs - psi(j, i));
        }
      }
    }

    // --- Velocities from the streamfunction (central differences) ---
    for (int j = 1; j < n - 1; ++j) {
      for (int i = 1; i < n - 1; ++i) {
        u(j, i) = (psi(j + 1, i) - psi(j - 1, i)) / (2 * h);
        v(j, i) = -(psi(j, i + 1) - psi(j, i - 1)) / (2 * h);
      }
    }

    // --- Wall vorticity via Thom's formula ---
    for (int i = 0; i < n; ++i) {
      w(0, i) = -2.0 * psi(1, i) / (h * h);                  // bottom
      w(n - 1, i) = -2.0 * psi(n - 2, i) / (h * h) -
                    2.0 * opt.lid_velocity / h;              // moving lid
    }
    for (int j = 0; j < n; ++j) {
      w(j, 0) = -2.0 * psi(j, 1) / (h * h);                  // left
      w(j, n - 1) = -2.0 * psi(j, n - 2) / (h * h);          // right
    }

    // --- Vorticity transport: first-order upwind, Gauss-Seidel ---
    double max_delta = 0.0;
    for (int j = 1; j < n - 1; ++j) {
      for (int i = 1; i < n - 1; ++i) {
        const double uij = u(j, i), vij = v(j, i);
        const double ae = inv_re_h2 + std::max(-uij, 0.0) / h;
        const double aw = inv_re_h2 + std::max(uij, 0.0) / h;
        const double an = inv_re_h2 + std::max(-vij, 0.0) / h;
        const double as = inv_re_h2 + std::max(vij, 0.0) / h;
        const double ap = ae + aw + an + as;
        const double wnew = (ae * w(j, i + 1) + aw * w(j, i - 1) +
                             an * w(j + 1, i) + as * w(j - 1, i)) /
                            ap;
        const double delta = wnew - w(j, i);
        max_delta = std::max(max_delta, std::fabs(delta));
        w(j, i) += opt.omega_relaxation * delta;
      }
    }

    sol.iterations = outer + 1;
    if (max_delta < opt.tolerance && outer > 10) {
      sol.converged = true;
      break;
    }
  }
  return sol;
}

const std::vector<std::pair<double, double>>& ghia_re100_u_centerline() {
  // Ghia, Ghia & Shin (1982), Table I, Re = 100: u along x = 0.5.
  static const std::vector<std::pair<double, double>> data = {
      {0.0000, 0.00000},  {0.0547, -0.03717}, {0.0625, -0.04192},
      {0.0703, -0.04775}, {0.1016, -0.06434}, {0.1719, -0.10150},
      {0.2813, -0.15662}, {0.4531, -0.21090}, {0.5000, -0.20581},
      {0.6172, -0.13641}, {0.7344, 0.00332},  {0.8516, 0.23151},
      {0.9531, 0.68717},  {0.9609, 0.73722},  {0.9688, 0.78871},
      {0.9766, 0.84123},  {1.0000, 1.00000}};
  return data;
}

const std::vector<std::pair<double, double>>& ghia_re100_v_centerline() {
  // Ghia, Ghia & Shin (1982), Table II, Re = 100: v along y = 0.5.
  static const std::vector<std::pair<double, double>> data = {
      {0.0000, 0.00000},  {0.0625, 0.09233},  {0.0703, 0.10091},
      {0.0781, 0.10890},  {0.0938, 0.12317},  {0.1563, 0.16077},
      {0.2266, 0.17507},  {0.2344, 0.17527},  {0.5000, 0.05454},
      {0.8047, -0.24533}, {0.8594, -0.22445}, {0.9063, -0.16914},
      {0.9453, -0.10313}, {0.9531, -0.08864}, {0.9609, -0.07391},
      {0.9688, -0.05906}, {1.0000, 0.00000}};
  return data;
}

}  // namespace sgm::cfd
