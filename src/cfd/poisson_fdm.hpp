#pragma once
// Finite-difference Poisson solver on the unit square with homogeneous
// Dirichlet boundaries:  -nabla^2 T = f,  T = 0 on the boundary.
//
// Used as the validation-data generator for the chip-thermal example (the
// "chip thermal analysis" CAD workload motivating the paper's intro): f is
// the power-density map of a die, T the temperature rise over the ambient
// heat-sink boundary.

#include <functional>

#include "tensor/matrix.hpp"

namespace sgm::cfd {

struct PoissonFdmOptions {
  int n = 129;                ///< grid points per side
  int max_sweeps = 50000;
  double tolerance = 1e-9;    ///< max residual change per sweep to stop
  double relaxation = 1.9;    ///< SOR factor
};

struct PoissonFdmSolution {
  int n = 0;
  double h = 0.0;
  tensor::Matrix t;           ///< (n x n), row = y index, col = x index
  bool converged = false;
  int sweeps = 0;

  /// Bilinear interpolation at (x, y) in [0,1]^2.
  double sample(double x, double y) const;
};

/// Solves -lap T = f with T=0 on the boundary of the unit square.
PoissonFdmSolution solve_poisson_dirichlet(
    const std::function<double(double, double)>& f,
    const PoissonFdmOptions& options = {});

}  // namespace sgm::cfd
