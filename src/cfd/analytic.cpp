#include "cfd/analytic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace sgm::cfd {

double AnnularPoiseuille::axial_velocity(double r) const {
  if (r_inner <= 0.0 || r_outer <= r_inner)
    throw std::invalid_argument("AnnularPoiseuille: need 0 < r_i < r_o");
  if (r < r_inner || r > r_outer) return 0.0;
  const double mu = nu * rho;
  const double ro2 = r_outer * r_outer, ri2 = r_inner * r_inner;
  const double log_ratio = std::log(r_outer / r_inner);
  return pressure_gradient / (4.0 * mu) *
         (ro2 - r * r - (ro2 - ri2) * std::log(r_outer / r) / log_ratio);
}

double AnnularPoiseuille::zero_shear_radius() const {
  const double ro2 = r_outer * r_outer, ri2 = r_inner * r_inner;
  return std::sqrt((ro2 - ri2) / (2.0 * std::log(r_outer / r_inner)));
}

double AnnularPoiseuille::max_velocity() const {
  return axial_velocity(zero_shear_radius());
}

double AnnularPoiseuille::mean_velocity() const {
  // Q / A with Q = int 2 pi r u(r) dr; closed form:
  //   Q = g pi / (8 mu) [ r_o^4 - r_i^4 - (r_o^2 - r_i^2)^2 / ln(r_o/r_i) ]
  const double mu = nu * rho;
  const double ro2 = r_outer * r_outer, ri2 = r_inner * r_inner;
  const double log_ratio = std::log(r_outer / r_inner);
  const double q = pressure_gradient * M_PI / (8.0 * mu) *
                   (ro2 * ro2 - ri2 * ri2 -
                    (ro2 - ri2) * (ro2 - ri2) / log_ratio);
  const double area = M_PI * (ro2 - ri2);
  return q / area;
}

double AnnularPoiseuille::pressure(double z, double length) const {
  return pressure_gradient * (length - z);
}

double plane_poiseuille_velocity(double y, double height, double g, double nu,
                                 double rho) {
  if (y < 0.0 || y > height) return 0.0;
  return g / (2.0 * nu * rho) * y * (height - y);
}

double poisson_manufactured_solution(double x, double y) {
  return std::sin(M_PI * x) * std::sin(M_PI * y);
}

double poisson_manufactured_rhs(double x, double y) {
  return 2.0 * M_PI * M_PI * std::sin(M_PI * x) * std::sin(M_PI * y);
}

double burgers_cole_hopf_solution(double x, double t, double nu) {
  if (nu <= 0.0)
    throw std::invalid_argument("burgers_cole_hopf_solution: nu must be > 0");
  if (t <= 0.0) return -std::sin(M_PI * x);

  // After eta = s z (s = sqrt(4 nu t)) both integrals carry the weight
  // exp(-z^2), negligible beyond |z| = 8. The combined exponent
  // -cos(pi y)/(2 pi nu) - z^2 is shifted by its maximum before
  // exponentiating (the shift cancels in the ratio), so small nu cannot
  // overflow.
  const double s = std::sqrt(4.0 * nu * t);
  const double z_max = 8.0;
  const int n = 512;  // composite Simpson intervals (even)
  const double h = 2.0 * z_max / n;

  std::vector<double> expo(n + 1);
  double peak = -std::numeric_limits<double>::infinity();
  for (int i = 0; i <= n; ++i) {
    const double z = -z_max + i * h;
    const double y = x - s * z;
    expo[i] = -std::cos(M_PI * y) / (2.0 * M_PI * nu) - z * z;
    peak = std::max(peak, expo[i]);
  }
  double num = 0.0, den = 0.0;
  for (int i = 0; i <= n; ++i) {
    const double z = -z_max + i * h;
    const double y = x - s * z;
    const double f = std::exp(expo[i] - peak);
    const double w = (i == 0 || i == n) ? 1.0 : (i % 2 ? 4.0 : 2.0);
    num += w * std::sin(M_PI * y) * f;
    den += w * f;
  }
  return -num / den;
}

double helmholtz_manufactured_solution(double x, double y, int a1, int a2) {
  return std::sin(a1 * M_PI * x) * std::sin(a2 * M_PI * y);
}

double helmholtz_manufactured_rhs(double x, double y, int a1, int a2,
                                  double wavenumber) {
  const double k2 = wavenumber * wavenumber;
  const double lam = (static_cast<double>(a1) * a1 +
                      static_cast<double>(a2) * a2) * M_PI * M_PI;
  return (k2 - lam) * helmholtz_manufactured_solution(x, y, a1, a2);
}

}  // namespace sgm::cfd
