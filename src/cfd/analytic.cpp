#include "cfd/analytic.hpp"

#include <cmath>
#include <stdexcept>

namespace sgm::cfd {

double AnnularPoiseuille::axial_velocity(double r) const {
  if (r_inner <= 0.0 || r_outer <= r_inner)
    throw std::invalid_argument("AnnularPoiseuille: need 0 < r_i < r_o");
  if (r < r_inner || r > r_outer) return 0.0;
  const double mu = nu * rho;
  const double ro2 = r_outer * r_outer, ri2 = r_inner * r_inner;
  const double log_ratio = std::log(r_outer / r_inner);
  return pressure_gradient / (4.0 * mu) *
         (ro2 - r * r - (ro2 - ri2) * std::log(r_outer / r) / log_ratio);
}

double AnnularPoiseuille::zero_shear_radius() const {
  const double ro2 = r_outer * r_outer, ri2 = r_inner * r_inner;
  return std::sqrt((ro2 - ri2) / (2.0 * std::log(r_outer / r_inner)));
}

double AnnularPoiseuille::max_velocity() const {
  return axial_velocity(zero_shear_radius());
}

double AnnularPoiseuille::mean_velocity() const {
  // Q / A with Q = int 2 pi r u(r) dr; closed form:
  //   Q = g pi / (8 mu) [ r_o^4 - r_i^4 - (r_o^2 - r_i^2)^2 / ln(r_o/r_i) ]
  const double mu = nu * rho;
  const double ro2 = r_outer * r_outer, ri2 = r_inner * r_inner;
  const double log_ratio = std::log(r_outer / r_inner);
  const double q = pressure_gradient * M_PI / (8.0 * mu) *
                   (ro2 * ro2 - ri2 * ri2 -
                    (ro2 - ri2) * (ro2 - ri2) / log_ratio);
  const double area = M_PI * (ro2 - ri2);
  return q / area;
}

double AnnularPoiseuille::pressure(double z, double length) const {
  return pressure_gradient * (length - z);
}

double plane_poiseuille_velocity(double y, double height, double g, double nu,
                                 double rho) {
  if (y < 0.0 || y > height) return 0.0;
  return g / (2.0 * nu * rho) * y * (height - y);
}

double poisson_manufactured_solution(double x, double y) {
  return std::sin(M_PI * x) * std::sin(M_PI * y);
}

double poisson_manufactured_rhs(double x, double y) {
  return 2.0 * M_PI * M_PI * std::sin(M_PI * x) * std::sin(M_PI * y);
}

}  // namespace sgm::cfd
