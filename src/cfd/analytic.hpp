#pragma once
// Closed-form reference solutions used as exact validation data:
//  * annular Poiseuille flow with parameterized inner radius — the
//    substitute for the paper's parameterized annular-ring example (the
//    same physics family: steady laminar internal flow with a geometric
//    parameter, but with exact ground truth);
//  * plane Poiseuille flow;
//  * manufactured Poisson solutions for solver and PINN self-tests.

#include <cstddef>

namespace sgm::cfd {

/// Fully developed axial flow in the annulus r in [r_inner, r_outer],
/// driven by a constant pressure gradient dp/dz = -g (g > 0 drives +z flow):
///   u_z(r) = g / (4 mu) * [ r_o^2 - r^2 - (r_o^2 - r_i^2) *
///            ln(r_o / r) / ln(r_o / r_i) ]
/// with u_z(r_i) = u_z(r_o) = 0 and u_r = 0 everywhere.
struct AnnularPoiseuille {
  double r_inner = 1.0;
  double r_outer = 2.0;
  double pressure_gradient = 1.0;  ///< g = -dp/dz (> 0)
  double nu = 0.1;                 ///< kinematic viscosity
  double rho = 1.0;

  /// Axial velocity at radius r (0 outside the annulus walls).
  double axial_velocity(double r) const;

  /// Peak axial velocity (at the zero-shear radius).
  double max_velocity() const;

  /// Radius of maximum velocity: r_m^2 = (r_o^2 - r_i^2) / (2 ln(r_o/r_i)).
  double zero_shear_radius() const;

  /// Bulk (area-averaged) velocity across the annulus.
  double mean_velocity() const;

  /// Pressure field p(z) for a duct of length `length` with p(length) = 0.
  double pressure(double z, double length) const;
};

/// Plane Poiseuille: u(y) for channel walls at y = 0 and y = height, driven
/// by g = -dp/dx.
double plane_poiseuille_velocity(double y, double height, double g,
                                 double nu, double rho = 1.0);

/// Manufactured 2-D Poisson problem on the unit square:
///   u(x, y)  = sin(pi x) sin(pi y)
///   -nabla^2 u = f = 2 pi^2 sin(pi x) sin(pi y),  u = 0 on the boundary.
double poisson_manufactured_solution(double x, double y);
double poisson_manufactured_rhs(double x, double y);

/// Exact solution of the 1-D viscous Burgers equation
///   u_t + u u_x = nu u_xx   on x in [-1, 1], t >= 0,
///   u(x, 0) = -sin(pi x),   u(-1, t) = u(1, t) = 0,
/// via the Cole–Hopf transform (Basdevant et al. 1986):
///   u(x, t) = -I1 / I2 with
///   I1 = int sin(pi(x - eta)) f(x - eta) exp(-eta^2 / 4 nu t) deta
///   I2 = int              f(x - eta) exp(-eta^2 / 4 nu t) deta
///   f(y) = exp(-cos(pi y) / (2 pi nu)).
/// The Gaussian-weighted integrals are evaluated with composite Simpson
/// quadrature after the substitution eta = sqrt(4 nu t) z; accurate to
/// ~1e-10 for nu >= 1e-3. t <= 0 returns the initial condition.
double burgers_cole_hopf_solution(double x, double t, double nu);

/// Manufactured 2-D Helmholtz problem on the unit square:
///   nabla^2 u + k^2 u = q,   u = 0 on the boundary,
///   u(x, y) = sin(a1 pi x) sin(a2 pi y)
///   q(x, y) = (k^2 - (a1^2 + a2^2) pi^2) u(x, y).
/// Integer a1/a2 keep the boundary condition exact; large a2 makes the
/// field oscillatory, the regime that stresses importance sampling.
double helmholtz_manufactured_solution(double x, double y, int a1, int a2);
double helmholtz_manufactured_rhs(double x, double y, int a1, int a2,
                                  double wavenumber);

}  // namespace sgm::cfd
