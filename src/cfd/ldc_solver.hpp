#pragma once
// Classical finite-difference solver for the steady lid-driven cavity —
// the validation-data generator standing in for the paper's OpenFOAM
// reference fields.
//
// Vorticity-streamfunction formulation on a uniform n x n grid:
//   nabla^2 psi = -omega
//   u dw/dx + v dw/dy = (1/Re) nabla^2 omega
// with Thom's wall formula for boundary vorticity and SOR/Gauss-Seidel
// sweeps. Verified in tests against the published Ghia, Ghia & Shin (1982)
// centerline profiles.

#include "tensor/matrix.hpp"

namespace sgm::cfd {

struct LdcOptions {
  int n = 129;               ///< grid points per side
  double reynolds = 100.0;
  double lid_velocity = 1.0;
  int max_iterations = 100000;   ///< outer vorticity-transport sweeps
  double tolerance = 1e-7;       ///< max |d omega| per sweep to stop
  double psi_relaxation = 1.8;   ///< SOR factor for the Poisson solve
  int psi_sweeps = 30;           ///< Poisson sweeps per outer iteration
  double omega_relaxation = 0.6; ///< under-relaxation for transport
};

struct LdcSolution {
  int n = 0;
  double h = 0.0;  ///< grid spacing (domain is the unit square)
  tensor::Matrix u, v, psi, omega;  ///< (n x n), row = y index, col = x index
  bool converged = false;
  int iterations = 0;

  /// Bilinear interpolation of a field at (x, y) in [0,1]^2.
  double sample(const tensor::Matrix& field, double x, double y) const;
  double sample_u(double x, double y) const { return sample(u, x, y); }
  double sample_v(double x, double y) const { return sample(v, x, y); }
};

/// Solves the cavity; throws std::invalid_argument on bad options.
LdcSolution solve_lid_driven_cavity(const LdcOptions& options);

/// Published Ghia et al. (1982) u-velocity along the vertical centerline
/// (x = 0.5) for Re = 100, as (y, u) pairs — test reference data.
const std::vector<std::pair<double, double>>& ghia_re100_u_centerline();

/// Ghia et al. v-velocity along the horizontal centerline (y = 0.5), Re=100.
const std::vector<std::pair<double, double>>& ghia_re100_v_centerline();

}  // namespace sgm::cfd
