#include "cfd/poisson_fdm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sgm::cfd {

double PoissonFdmSolution::sample(double x, double y) const {
  const double cx = std::clamp(x, 0.0, 1.0) / h;
  const double cy = std::clamp(y, 0.0, 1.0) / h;
  const int i0 = std::min(static_cast<int>(cx), n - 2);
  const int j0 = std::min(static_cast<int>(cy), n - 2);
  const double fx = cx - i0, fy = cy - j0;
  return t(j0, i0) * (1 - fx) * (1 - fy) + t(j0, i0 + 1) * fx * (1 - fy) +
         t(j0 + 1, i0) * (1 - fx) * fy + t(j0 + 1, i0 + 1) * fx * fy;
}

PoissonFdmSolution solve_poisson_dirichlet(
    const std::function<double(double, double)>& f,
    const PoissonFdmOptions& opt) {
  if (opt.n < 8) throw std::invalid_argument("PoissonFdm: grid too small");
  const int n = opt.n;
  const double h = 1.0 / (n - 1);

  PoissonFdmSolution sol;
  sol.n = n;
  sol.h = h;
  sol.t = tensor::Matrix(n, n);

  // Pre-evaluate the source term at interior nodes.
  tensor::Matrix src(n, n);
  for (int j = 1; j < n - 1; ++j)
    for (int i = 1; i < n - 1; ++i) src(j, i) = f(i * h, j * h);

  for (int sweep = 0; sweep < opt.max_sweeps; ++sweep) {
    double max_delta = 0.0;
    for (int j = 1; j < n - 1; ++j) {
      for (int i = 1; i < n - 1; ++i) {
        const double gs = 0.25 * (sol.t(j, i + 1) + sol.t(j, i - 1) +
                                  sol.t(j + 1, i) + sol.t(j - 1, i) +
                                  h * h * src(j, i));
        const double delta = gs - sol.t(j, i);
        sol.t(j, i) += opt.relaxation * delta;
        max_delta = std::max(max_delta, std::fabs(delta));
      }
    }
    sol.sweeps = sweep + 1;
    if (max_delta < opt.tolerance) {
      sol.converged = true;
      break;
    }
  }
  return sol;
}

}  // namespace sgm::cfd
