#include "spade/isr.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "graph/lanczos.hpp"
#include "graph/laplacian.hpp"
#include "util/rng.hpp"

namespace sgm::spade {

using graph::CsrGraph;
using graph::Vec;
using tensor::Matrix;

namespace {

// B-orthonormalizes the columns of V in place via modified Gram-Schmidt,
// where B-inner products are computed through apply_b.
void b_orthonormalize(Matrix& v,
                      const std::function<void(const Vec&, Vec&)>& apply_b) {
  const std::size_t n = v.rows(), r = v.cols();
  Vec col(n), bcol(n);
  std::vector<Vec> done;    // previously normalized columns
  std::vector<Vec> done_b;  // and their B-images
  for (std::size_t j = 0; j < r; ++j) {
    for (std::size_t i = 0; i < n; ++i) col[i] = v(i, j);
    for (std::size_t p = 0; p < done.size(); ++p) {
      const double c = graph::dot(done_b[p], col);
      for (std::size_t i = 0; i < n; ++i) col[i] -= c * done[p][i];
    }
    apply_b(col, bcol);
    double nb = std::sqrt(std::max(0.0, graph::dot(col, bcol)));
    if (nb < 1e-14) {
      // Degenerate direction: keep it tiny but nonzero for the Ritz step.
      nb = 1.0;
    }
    for (std::size_t i = 0; i < n; ++i) col[i] /= nb;
    apply_b(col, bcol);
    done.push_back(col);
    done_b.push_back(bcol);
    for (std::size_t i = 0; i < n; ++i) v(i, j) = col[i];
  }
}

}  // namespace

IsrResult compute_isr_graphs(const CsrGraph& gx, const CsrGraph& gy,
                             const IsrOptions& options) {
  if (gx.num_nodes() != gy.num_nodes())
    throw std::invalid_argument("compute_isr: graph size mismatch");
  const std::size_t n = gx.num_nodes();
  IsrResult out;
  if (n == 0) return out;
  const int r =
      std::max(1, std::min<int>(options.rank, static_cast<int>(n) - 1));

  // Regularized output Laplacian L_Y + shift*mean_deg*I so PCG solves are
  // well posed even when G_Y is disconnected.
  double mean_deg_y = 0.0;
  for (graph::NodeId u = 0; u < n; ++u) mean_deg_y += gy.weighted_degree(u);
  mean_deg_y /= static_cast<double>(n);
  const double shift =
      std::max(1e-12, options.shift * std::max(mean_deg_y, 1e-12));

  auto apply_lx = [&gx](const Vec& x, Vec& y) {
    graph::laplacian_apply(gx, x, y);
  };
  auto apply_ly_shifted = [&gy, shift](const Vec& x, Vec& y) {
    graph::laplacian_apply(gy, x, y);
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += shift * x[i];
  };
  Vec diag_y = graph::laplacian_diagonal(gy);
  for (double& d : diag_y) d += shift;

  // --- Generalized subspace iteration for L_X v = lambda (L_Y + sI) v ---
  util::Rng rng(options.seed);
  Matrix v(n, r);
  for (std::size_t i = 0; i < v.size(); ++i) v.data()[i] = rng.normal();

  Vec col(n), w(n);
  std::vector<double> ritz_values(r, 0.0);
  for (int iter = 0; iter < options.subspace_iterations; ++iter) {
    // Z <- (L_Y + sI)^-1 L_X V
    Matrix z(n, r);
    for (int j = 0; j < r; ++j) {
      for (std::size_t i = 0; i < n; ++i) col[i] = v(i, j);
      apply_lx(col, w);
      graph::PcgResult sol = graph::pcg_solve(apply_ly_shifted, diag_y, w,
                                              options.pcg, /*deflate=*/false);
      for (std::size_t i = 0; i < n; ++i) z(i, j) = sol.x[i];
    }
    b_orthonormalize(z, apply_ly_shifted);

    // Rayleigh-Ritz on the B-orthonormal basis: A_r = Z^T L_X Z (r x r).
    Matrix ar(r, r);
    for (int j = 0; j < r; ++j) {
      for (std::size_t i = 0; i < n; ++i) col[i] = z(i, j);
      apply_lx(col, w);
      for (int i2 = 0; i2 < r; ++i2) {
        double s = 0.0;
        for (std::size_t i = 0; i < n; ++i) s += z(i, i2) * w[i];
        ar(i2, j) = s;
      }
    }
    // Symmetrize away the numerical asymmetry from inexact solves.
    for (int a = 0; a < r; ++a)
      for (int b = a + 1; b < r; ++b) {
        const double s = 0.5 * (ar(a, b) + ar(b, a));
        ar(a, b) = s;
        ar(b, a) = s;
      }
    graph::EigenPairs ritz = graph::jacobi_eigensymm(ar);
    // Rotate the basis to Ritz vectors, descending eigenvalue order.
    Matrix rotated(n, r);
    for (int j = 0; j < r; ++j) {
      const int src = r - 1 - j;  // descending
      ritz_values[j] = ritz.values[src];
      for (std::size_t i = 0; i < n; ++i) {
        double s = 0.0;
        for (int l = 0; l < r; ++l) s += z(i, l) * ritz.vectors(l, src);
        rotated(i, j) = s;
      }
    }
    v = std::move(rotated);
  }

  out.eigenvalues.assign(ritz_values.begin(), ritz_values.end());
  for (double& ev : out.eigenvalues) ev = std::max(ev, 0.0);

  // V_r = [v_1 sqrt(l_1), ..., v_r sqrt(l_r)]
  out.vr = Matrix(n, r);
  for (int j = 0; j < r; ++j) {
    const double s = std::sqrt(out.eigenvalues[j]);
    for (std::size_t i = 0; i < n; ++i) out.vr(i, j) = v(i, j) * s;
  }

  // Node scores: mean edge score over the input-graph neighborhood (Eq. 11).
  out.node_score.assign(n, 0.0);
  for (graph::NodeId p = 0; p < n; ++p) {
    const auto nbrs = gx.neighbors(p);
    if (nbrs.empty()) continue;
    double acc = 0.0;
    for (graph::NodeId q : nbrs) {
      double s = 0.0;
      for (int j = 0; j < r; ++j) {
        const double d = out.vr(p, j) - out.vr(q, j);
        s += d * d;
      }
      acc += s;
    }
    out.node_score[p] = acc / static_cast<double>(nbrs.size());
  }
  return out;
}

IsrResult compute_isr(const CsrGraph& gx, const Matrix& y,
                      const IsrOptions& options) {
  if (y.rows() != gx.num_nodes())
    throw std::invalid_argument("compute_isr: y rows != graph nodes");
  CsrGraph gy = graph::build_knn_graph(y, options.y_knn);
  return compute_isr_graphs(gx, gy, options);
}

double isr_edge_score(const IsrResult& r, graph::NodeId p, graph::NodeId q) {
  double s = 0.0;
  for (std::size_t j = 0; j < r.vr.cols(); ++j) {
    const double d = r.vr(p, j) - r.vr(q, j);
    s += d * d;
  }
  return s;
}

}  // namespace sgm::spade
