#pragma once
// SPADE-style spectral stability scoring — stage S3 of SGM-PINN.
//
// Given an input graph G_X over samples and the model outputs Y at those
// samples, the Inverse Stability Rating (ISR) ranks how violently the
// model's output manifold stretches the input manifold (Cheng et al., ICML
// 2021; Lemmas 2-3 of the SGM-PINN paper):
//
//   ISR_F            = lambda_max(L_Y^+ L_X)            (>= best Lipschitz K*)
//   ISR_F(p, q)      = || V_r^T e_pq ||_2^2,  V_r = [v_1 sqrt(l_1), ...]
//   ISR_F(p)         = mean over q in N_X(p) of ISR_F(p, q)
//
// where (l_i, v_i) are the top generalized eigenpairs of L_X v = l L_Y v.
// High node scores flag regions whose losses change fastest w.r.t. input
// perturbations — exactly where a cluster-averaged loss estimate is least
// trustworthy, so SGM-S adds weight there.

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/knn.hpp"
#include "graph/pcg.hpp"
#include "tensor/matrix.hpp"

namespace sgm::spade {

struct IsrOptions {
  int rank = 8;               ///< r: number of generalized eigenpairs
  int subspace_iterations = 10;
  /// Relative diagonal shift added to L_Y before solving (regularizes the
  /// singular Laplacian; expressed as a fraction of its mean degree).
  double shift = 1e-4;
  graph::PcgOptions pcg{1e-6, 500, 0.0};
  /// kNN configuration for the output graph G_Y built over Y rows.
  graph::KnnGraphOptions y_knn{};
  std::uint64_t seed = 99;
};

struct IsrResult {
  /// Per-node stability score (Eq. 11); larger = less stable.
  std::vector<double> node_score;
  /// Top generalized eigenvalues, descending. Front() approximates ISR_F.
  std::vector<double> eigenvalues;
  /// n x r matrix of sqrt(lambda)-scaled eigenvectors (Lemma 3's V_r).
  tensor::Matrix vr;

  double isr_max() const {
    return eigenvalues.empty() ? 0.0 : eigenvalues.front();
  }
};

/// Scores stability of the map X -> Y where G_X is the (sub)graph over the
/// scored samples and `y` holds the model outputs/losses per sample
/// (n x m). G_Y is built internally as a kNN graph over rows of y.
IsrResult compute_isr(const graph::CsrGraph& gx, const tensor::Matrix& y,
                      const IsrOptions& options);

/// Same, with a caller-provided output graph.
IsrResult compute_isr_graphs(const graph::CsrGraph& gx,
                             const graph::CsrGraph& gy,
                             const IsrOptions& options);

/// Edge score ISR_F(p, q) for an arbitrary node pair from a result's V_r.
double isr_edge_score(const IsrResult& r, graph::NodeId p, graph::NodeId q);

}  // namespace sgm::spade
