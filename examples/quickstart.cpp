// Quickstart: solve -lap u = f on the unit square with a PINN, comparing
// uniform sampling against the SGM-PINN graph-based importance sampler.
//
//   ./quickstart [iterations]
//
// This is the five-minute tour of the public API:
//   1. define a problem (PoissonProblem),
//   2. build a network (nn::Mlp),
//   3. pick a sampler (UniformSampler or core::SgmSampler),
//   4. run the Trainer and read the validation history.

#include <cstdio>
#include <cstdlib>

#include "core/sgm_sampler.hpp"
#include "nn/mlp.hpp"
#include "pinn/pde.hpp"
#include "pinn/trainer.hpp"
#include "pinn/validation.hpp"
#include "samplers/uniform.hpp"

using namespace sgm;

namespace {

nn::Mlp make_network(std::uint64_t seed) {
  nn::MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.output_dim = 1;
  cfg.width = 32;
  cfg.depth = 3;
  cfg.activation = &nn::silu();
  util::Rng rng(seed);
  return nn::Mlp(cfg, rng);
}

pinn::TrainerOptions trainer_options(std::uint64_t iterations) {
  pinn::TrainerOptions opt;
  opt.batch_size = 128;
  opt.max_iterations = iterations;
  opt.learning_rate = 2e-3;
  opt.validate_every = std::max<std::uint64_t>(1, iterations / 10);
  opt.seed = 42;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t iterations =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;

  pinn::PoissonProblem::Options popt;
  popt.interior_points = 4096;
  pinn::PoissonProblem problem(popt);

  // --- Arm 1: uniform sampling -------------------------------------------
  {
    nn::Mlp net = make_network(7);
    samplers::UniformSampler sampler(
        static_cast<std::uint32_t>(problem.interior_points().rows()));
    pinn::Trainer trainer(problem, net, sampler, trainer_options(iterations));
    auto history = trainer.run();
    std::printf("uniform : err %-22s wall %.2fs\n",
                pinn::format_validation(history.records.back().validation)
                    .c_str(),
                history.total_train_wall_s);
  }

  // --- Arm 2: SGM-PINN graph-based importance sampling -------------------
  {
    nn::Mlp net = make_network(7);  // identical init for a fair race
    core::SgmOptions sopt;
    sopt.pgm.knn.k = 10;
    sopt.lrd.levels = 6;
    sopt.rep_fraction = 0.15;
    sopt.tau_e = std::max<std::uint64_t>(50, iterations / 10);
    sopt.tau_g = 0;  // the cloud is static; no rebuild needed here
    sopt.epoch.epoch_fraction = 0.25;
    core::SgmSampler sampler(problem.interior_points(), sopt);
    pinn::Trainer trainer(problem, net, sampler, trainer_options(iterations));
    auto history = trainer.run();
    std::printf("sgm-pinn: err %-22s wall %.2fs (refresh %.2fs, %llu extra "
                "loss evals)\n",
                pinn::format_validation(history.records.back().validation)
                    .c_str(),
                history.total_train_wall_s, history.sampler_refresh_s,
                static_cast<unsigned long long>(
                    history.sampler_loss_evaluations));
  }
  return 0;
}
