// Sampler playground: inspect the SGM-PINN machinery itself, without any
// training — build a PGM over a structured synthetic cloud, decompose it
// into LRD clusters, feed the pipeline a synthetic "loss" field and watch
// how cluster scores and epoch composition react. Useful for tuning k, L
// and the epoch ratio range on a new problem.
//
//   ./sampler_playground [n_points] [k] [levels]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/sgm_sampler.hpp"
#include "graph/effective_resistance.hpp"
#include "util/rng.hpp"

using namespace sgm;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8192;
  const std::size_t k = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10;
  const int levels = argc > 3 ? std::atoi(argv[3]) : 8;

  // A cloud with structure: uniform background + two dense blobs.
  util::Rng rng(99);
  tensor::Matrix pts(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    const double pick = rng.uniform();
    if (pick < 0.2) {  // blob A
      pts(i, 0) = rng.normal(0.25, 0.04);
      pts(i, 1) = rng.normal(0.25, 0.04);
    } else if (pick < 0.4) {  // blob B
      pts(i, 0) = rng.normal(0.75, 0.06);
      pts(i, 1) = rng.normal(0.6, 0.06);
    } else {
      pts(i, 0) = rng.uniform();
      pts(i, 1) = rng.uniform();
    }
  }

  core::SgmOptions opt;
  opt.pgm.knn.k = k;
  opt.lrd.levels = levels;
  opt.tau_e = 1;
  opt.tau_g = 0;
  opt.epoch.epoch_fraction = 0.2;
  core::SgmSampler sampler(pts, opt);

  const auto& clusters = sampler.clusters();
  std::printf("PGM: %zu points, k=%zu  ->  %u LRD clusters (L=%d)\n", n, k,
              clusters.num_clusters(), levels);

  // Cluster size histogram.
  std::map<std::uint32_t, int> hist;
  std::uint32_t max_size = 0;
  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    const auto s = clusters.size(c);
    max_size = std::max(max_size, s);
    ++hist[s <= 4 ? s : (s <= 8 ? 8 : (s <= 16 ? 16 : 999))];
  }
  std::printf("cluster-size histogram: <=1:%d  2-4:%d+%d+%d  5-8:%d  9-16:%d"
              "  >16:%d  (max %u)\n",
              hist[1], hist[2], hist[3], hist[4], hist[8], hist[16],
              hist[999], max_size);

  // Synthetic loss: a hot ring around (0.5, 0.5).
  auto loss_field = [&](std::uint32_t i) {
    const double dx = pts(i, 0) - 0.5, dy = pts(i, 1) - 0.5;
    const double r = std::sqrt(dx * dx + dy * dy);
    return 0.05 + 3.0 * std::exp(-40.0 * (r - 0.3) * (r - 0.3));
  };
  auto evaluate = [&](const std::vector<std::uint32_t>& rows) {
    std::vector<double> loss(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) loss[i] = loss_field(rows[i]);
    return loss;
  };

  sampler.maybe_refresh(0, evaluate, rng);
  std::printf("refresh: scored %llu representatives (r=%.0f%%), epoch size "
              "%zu (%.1f%% of the cloud)\n",
              static_cast<unsigned long long>(sampler.loss_evaluations()),
              opt.rep_fraction * 100, sampler.last_epoch_size(),
              100.0 * sampler.last_epoch_size() / n);

  // Where do batches land? Compare ring-region share under uniform vs SGM.
  auto in_ring = [&](std::uint32_t i) {
    const double dx = pts(i, 0) - 0.5, dy = pts(i, 1) - 0.5;
    const double r = std::sqrt(dx * dx + dy * dy);
    return r > 0.2 && r < 0.4;
  };
  std::size_t ring_cloud = 0;
  for (std::uint32_t i = 0; i < n; ++i) ring_cloud += in_ring(i);
  std::size_t ring_batch = 0, total = 0;
  for (int b = 0; b < 200; ++b)
    for (auto i : sampler.next_batch(64, rng)) {
      ring_batch += in_ring(i);
      ++total;
    }
  std::printf("hot-ring share: %.1f%% of the cloud, %.1f%% of SGM batches "
              "(bias toward high-loss region)\n",
              100.0 * ring_cloud / n, 100.0 * ring_batch / total);

  // Cluster score extremes.
  const auto& scores = sampler.last_scores();
  double lo = 1e300, hi = -1e300;
  for (double s : scores.combined) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  std::printf("cluster scores: min %.3g, max %.3g (ratio %.1fx mapped into "
              "[%.2g, %.2g] sampling ratios)\n",
              lo, hi, hi / std::max(lo, 1e-300), opt.epoch.ratio_min,
              opt.epoch.ratio_max);
  return 0;
}
