// Chip-thermal analysis example — the CAD workload from the paper's intro:
// steady 2-D die temperature under a floorplan of power blocks, heat-sink
// boundary. The hot spots concentrate PDE residuals under the cores, which
// is exactly the regime where SGM-PINN's cluster-biased sampling pays off.
//
//   ./chip_thermal [budget_seconds]

#include <cstdio>
#include <cstdlib>

#include "core/sgm_sampler.hpp"
#include "pinn/thermal.hpp"
#include "pinn/trainer.hpp"
#include "pinn/validation.hpp"
#include "samplers/uniform.hpp"

using namespace sgm;

namespace {

pinn::TrainHistory run(const pinn::ChipThermalProblem& problem,
                       samplers::Sampler& sampler, double budget) {
  nn::MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.output_dim = 1;
  cfg.width = 40;
  cfg.depth = 3;
  util::Rng rng(7);
  nn::Mlp net(cfg, rng);

  pinn::TrainerOptions topt;
  topt.batch_size = 128;
  topt.max_iterations = std::numeric_limits<std::uint64_t>::max() / 2;
  topt.wall_time_budget_s = budget;
  topt.learning_rate = 2e-3;
  topt.validate_every = 400;
  pinn::Trainer trainer(problem, net, sampler, topt);
  return trainer.run();
}

}  // namespace

int main(int argc, char** argv) {
  const double budget = argc > 1 ? std::atof(argv[1]) : 20.0;

  pinn::ChipThermalProblem::Options opt;
  opt.interior_points = 8192;
  pinn::ChipThermalProblem problem(opt);
  std::printf("die floorplan: %zu power blocks, FDM reference peak dT = "
              "%.3f (grid %d^2)\n",
              problem.options().blocks.size(), problem.reference_peak(),
              problem.options().reference_grid);

  std::printf("\n[uniform sampling, %.0fs]\n", budget);
  {
    samplers::UniformSampler sampler(
        static_cast<std::uint32_t>(problem.interior_points().rows()));
    auto h = run(problem, sampler, budget);
    std::printf("  final: %s\n",
                pinn::format_validation(h.records.back().validation).c_str());
  }

  std::printf("\n[SGM-PINN sampling, %.0fs]\n", budget);
  {
    core::SgmOptions sopt;
    sopt.pgm.knn.k = 10;
    sopt.lrd.levels = 8;
    sopt.rep_fraction = 0.15;
    sopt.tau_e = 800;
    sopt.tau_g = 0;
    sopt.epoch.epoch_fraction = 0.5;
    sopt.epoch.ratio_max = 2.5;
    core::SgmSampler sampler(problem.interior_points(), sopt);
    auto h = run(problem, sampler, budget);
    std::printf("  final: %s  (refresh %.2fs, %llu extra loss evals)\n",
                pinn::format_validation(h.records.back().validation).c_str(),
                h.sampler_refresh_s,
                static_cast<unsigned long long>(h.sampler_loss_evaluations));
  }
  return 0;
}
