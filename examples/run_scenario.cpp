// Generic scenario driver — trains any registered scenario with its
// recommended configuration. This replaces the per-problem example binaries
// (ldc_zeroeq, annular_ring_param, chip_thermal): one `run_scenario ldc_zeroeq`
// does what each of them hard-coded, and new scenarios registered in
// src/pinn/scenario.cpp appear here with no example code at all.
//
//   ./run_scenario list
//   ./run_scenario <name> [budget_seconds] [sampler]
//
// sampler: sgm (default, the scenario's recommended SGM configuration),
//          sgm-s (SGM + the S3/ISR stability term), mis, uniform.
// budget_seconds <= 0 runs the scenario's recommended iteration budget.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>

#include "core/sgm_sampler.hpp"
#include "pinn/scenario.hpp"
#include "pinn/validation.hpp"
#include "samplers/mis.hpp"
#include "samplers/uniform.hpp"

using namespace sgm;

namespace {

int list_scenarios() {
  std::printf("registered scenarios:\n");
  auto& registry = pinn::ScenarioRegistry::instance();
  for (const auto& name : registry.names()) {
    const auto cfg = registry.make(name, pinn::ScenarioScale::kSmoke);
    std::printf("  %-20s %s\n", name.c_str(), cfg.description.c_str());
  }
  return 0;
}

std::unique_ptr<samplers::Sampler> make_sampler(const pinn::ScenarioConfig& cfg,
                                                const std::string& kind) {
  const auto n =
      static_cast<std::uint32_t>(cfg.problem->interior_points().rows());
  if (kind == "uniform") return std::make_unique<samplers::UniformSampler>(n);
  if (kind == "mis") {
    samplers::MisOptions mopt;
    mopt.refresh_every = cfg.sgm.tau_e;
    return std::make_unique<samplers::MisSampler>(
        cfg.problem->interior_points(), mopt);
  }
  if (kind == "sgm" || kind == "sgm-s") {
    core::SgmOptions sopt = cfg.sgm;
    sopt.use_isr = (kind == "sgm-s") || sopt.use_isr;
    return std::make_unique<core::SgmSampler>(cfg.problem->interior_points(),
                                              sopt);
  }
  std::fprintf(stderr, "unknown sampler '%s' (sgm, sgm-s, mis, uniform)\n",
               kind.c_str());
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "list") == 0 ||
      std::strcmp(argv[1], "--list") == 0) {
    if (argc < 2)
      std::printf("usage: %s <scenario|list> [budget_seconds] [sampler]\n\n",
                  argv[0]);
    return list_scenarios();
  }

  const std::string name = argv[1];
  const double budget = argc > 2 ? std::atof(argv[2]) : 0.0;
  const std::string sampler_kind = argc > 3 ? argv[3] : "sgm";

  auto& registry = pinn::ScenarioRegistry::instance();
  if (!registry.contains(name)) {
    std::fprintf(stderr, "unknown scenario '%s'\n\n", name.c_str());
    list_scenarios();
    return 1;
  }

  std::printf("[1/3] building scenario '%s' ...\n", name.c_str());
  const pinn::ScenarioConfig cfg =
      registry.make(name, pinn::ScenarioScale::kFull);
  std::printf("      %s\n      cloud: %zu interior points, net %zux%zu\n",
              cfg.description.c_str(), cfg.problem->interior_points().rows(),
              cfg.net.width, cfg.net.depth);

  util::Rng net_rng(cfg.net_seed);
  nn::Mlp net(cfg.net, net_rng);
  auto sampler = make_sampler(cfg, sampler_kind);
  if (!sampler) return 1;

  pinn::TrainerOptions topt = cfg.trainer;
  if (budget > 0.0) {
    topt.wall_time_budget_s = budget;
    topt.max_iterations = std::numeric_limits<std::uint64_t>::max() / 2;
  }
  topt.telemetry_csv = name + "_history.csv";

  std::printf("[2/3] training with %s sampling (%s) ...\n",
              sampler->name().c_str(),
              budget > 0.0
                  ? (std::to_string(static_cast<int>(budget)) + "s budget")
                        .c_str()
                  : (std::to_string(topt.max_iterations) + " iterations")
                        .c_str());
  pinn::Trainer trainer(*cfg.problem, net, *sampler, topt);
  const pinn::TrainHistory history = trainer.run();

  std::printf("[3/3] results:\n");
  for (const auto& rec : history.records)
    std::printf("   it=%-7llu t=%6.1fs  loss=%-10.4g %s\n",
                static_cast<unsigned long long>(rec.iteration),
                rec.train_wall_s, rec.mean_loss,
                pinn::format_validation(rec.validation).c_str());
  std::printf("   sampler refresh: %.2fs over %llu extra loss evals\n",
              history.sampler_refresh_s,
              static_cast<unsigned long long>(
                  history.sampler_loss_evaluations));
  for (const auto& env : cfg.envelopes) {
    const double best = history.best_error(env.metric);
    std::printf("   envelope %-6s best %.4g vs bound %.4g  [%s]\n",
                env.metric.c_str(), best, env.max_error,
                best <= env.max_error ? "ok" : "MISSED");
  }
  std::printf("   telemetry written to %s\n", topt.telemetry_csv.c_str());
  return 0;
}
