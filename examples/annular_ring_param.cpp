// Parameterized annular-ring flow — the paper's Section 4.2 workload.
//
// One network learns the flow across a *range* of geometries: the inner
// radius r_i in [0.75, 1.1] is a network input alongside (z, r). The SGM-S
// sampler (SGM + the S3 stability term) guides sampling; validation is
// against the exact annular-Poiseuille solution at r_i = 1.0, 0.875, 0.75.
// Finishes with the Figure-4-style |p error| field as an ASCII heat map.
//
//   ./annular_ring_param [budget_seconds]

#include <cstdio>
#include <cstdlib>

#include "core/sgm_sampler.hpp"
#include "nn/encoding.hpp"
#include "pinn/annular.hpp"
#include "pinn/trainer.hpp"
#include "pinn/validation.hpp"

using namespace sgm;

int main(int argc, char** argv) {
  const double budget = argc > 1 ? std::atof(argv[1]) : 30.0;

  pinn::AnnularProblem::Options popt;
  popt.interior_points = 16384;
  popt.boundary_points = 2048;
  pinn::AnnularProblem problem(popt);
  std::printf("parameterized annular ring: r_i in [%.2f, %.2f], nu=%.2f\n",
              popt.r_inner_min, popt.r_inner_max, popt.nu);

  nn::MlpConfig cfg;
  cfg.input_dim = 3;  // (z, r, r_i)
  cfg.output_dim = 3; // (u, v, p)
  cfg.width = 48;
  cfg.depth = 4;
  util::Rng rng(7);
  cfg.encoding = std::make_shared<nn::FourierEncoding>(3, 12, 1.0, rng);
  nn::Mlp net(cfg, rng);

  core::SgmOptions sopt;
  sopt.pgm.knn.k = 7;        // paper's AR hyperparameters
  sopt.lrd.levels = 6;
  sopt.rep_fraction = 0.15;
  sopt.tau_e = 700;
  sopt.tau_g = 6000;
  sopt.epoch.epoch_fraction = 0.125;
  sopt.use_isr = true;       // S3: stability term for parameterized training
  sopt.isr.rank = 6;
  sopt.isr.subspace_iterations = 4;
  core::SgmSampler sampler(problem.interior_points(), sopt);
  std::printf("SGM-S sampler: %u LRD clusters over %zu points\n",
              sampler.clusters().num_clusters(),
              problem.interior_points().rows());

  pinn::TrainerOptions topt;
  topt.batch_size = 128;
  topt.max_iterations = std::numeric_limits<std::uint64_t>::max() / 2;
  topt.wall_time_budget_s = budget;
  topt.learning_rate = 2e-3;
  topt.validate_every = 500;
  pinn::Trainer trainer(problem, net, sampler, topt);
  auto history = trainer.run();

  std::printf("\nerror vs exact solution, averaged over r_i = 1.0/0.875/0.75:\n");
  for (const auto& rec : history.records)
    std::printf("   it=%-7llu t=%6.1fs  %s\n",
                static_cast<unsigned long long>(rec.iteration),
                rec.train_wall_s,
                pinn::format_validation(rec.validation).c_str());

  std::printf("\nper-radius breakdown at the end of training:\n");
  for (double ri : {1.0, 0.875, 0.75})
    std::printf("   r_i=%.3f : %s\n", ri,
                pinn::format_validation(problem.validate_at(net, ri)).c_str());

  std::printf("\n|p - p_exact| field at r_i = 1.0 (Figure 4 style):\n");
  const tensor::Matrix field = problem.pressure_error_field(net, 1.0, 48, 16);
  std::fputs(pinn::ascii_heatmap(field, 48, 16).c_str(), stdout);
  return 0;
}
