// Lid-driven cavity with zero-equation turbulence — the paper's Section 4.1
// workload, end to end:
//   1. generate reference fields with the built-in vorticity-streamfunction
//      solver (the OpenFOAM stand-in),
//   2. train a PINN with the SGM-PINN sampler (k, L, r, tau_e, tau_G as in
//      the paper, scaled),
//   3. report relative L2 errors in u, v and the eddy viscosity nu.
//
//   ./ldc_zeroeq [budget_seconds] [reynolds]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "cfd/ldc_solver.hpp"
#include "core/sgm_sampler.hpp"
#include "nn/encoding.hpp"
#include "pinn/navier_stokes.hpp"
#include "pinn/trainer.hpp"
#include "pinn/validation.hpp"

using namespace sgm;

int main(int argc, char** argv) {
  const double budget = argc > 1 ? std::atof(argv[1]) : 30.0;
  const double reynolds = argc > 2 ? std::atof(argv[2]) : 10.0;

  std::printf("[1/3] solving reference cavity (Re=%.0f) ...\n", reynolds);
  cfd::LdcOptions ref_opt;
  ref_opt.n = 81;
  ref_opt.reynolds = reynolds;
  auto reference = std::make_shared<const cfd::LdcSolution>(
      cfd::solve_lid_driven_cavity(ref_opt));
  std::printf("      %s after %d sweeps (psi_min at the primary vortex)\n",
              reference->converged ? "converged" : "NOT converged",
              reference->iterations);

  std::printf("[2/3] training PINN with SGM sampling (budget %.0fs) ...\n",
              budget);
  pinn::LdcProblem::Options popt;
  popt.reynolds = reynolds;
  popt.interior_points = 16384;
  popt.boundary_points = 2048;
  popt.zero_equation = true;
  pinn::LdcProblem problem(popt, reference);

  nn::MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.output_dim = 3;  // (u, v, p)
  cfg.width = 48;
  cfg.depth = 4;
  cfg.activation = &nn::silu();  // the paper's activation
  util::Rng rng(7);
  cfg.encoding = std::make_shared<nn::FourierEncoding>(2, 12, 1.5, rng);
  nn::Mlp net(cfg, rng);

  core::SgmOptions sopt;
  sopt.pgm.knn.k = 20;       // paper: k=30 at N=8M (scaled)
  sopt.lrd.levels = 10;      // paper: L=10
  sopt.rep_fraction = 0.15;  // paper: r=15%
  sopt.tau_e = 700;          // paper: 7k (scaled 10x)
  sopt.tau_g = 2500;         // paper: 25k (scaled 10x)
  sopt.epoch.epoch_fraction = 0.125;
  core::SgmSampler sampler(problem.interior_points(), sopt);
  std::printf("      PGM clustered into %u LRD clusters\n",
              sampler.clusters().num_clusters());

  pinn::TrainerOptions topt;
  topt.batch_size = 128;
  topt.max_iterations = std::numeric_limits<std::uint64_t>::max() / 2;
  topt.wall_time_budget_s = budget;
  topt.learning_rate = 2e-3;
  topt.validate_every = 500;
  topt.telemetry_csv = "ldc_zeroeq_history.csv";
  pinn::Trainer trainer(problem, net, sampler, topt);
  auto history = trainer.run();

  std::printf("[3/3] results (relative L2 vs the FD reference):\n");
  for (const auto& rec : history.records)
    std::printf("   it=%-7llu t=%6.1fs  loss=%-10.4g %s\n",
                static_cast<unsigned long long>(rec.iteration),
                rec.train_wall_s, rec.mean_loss,
                pinn::format_validation(rec.validation).c_str());
  std::printf("   sampler refresh: %.2fs over %llu extra loss evals\n",
              history.sampler_refresh_s,
              static_cast<unsigned long long>(
                  history.sampler_loss_evaluations));
  std::printf("   telemetry written to ldc_zeroeq_history.csv\n");
  return 0;
}
